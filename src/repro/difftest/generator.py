"""Seeded generator of verifier-valid OmniVM programs.

Programs are built from a small set of templates — ALU blocks, extension
and shift edge cases, FP arithmetic and conversions, loads/stores with
SFI-legal address patterns, forward branches, counted loops, calls,
indirect jumps, traps, and the virtual exception model — chosen and
parameterized by a deterministic :class:`random.Random` stream, so any
program is reproducible from ``(seed, index)`` alone.

Structural invariants every generated program keeps (these are what make
cross-executor comparison meaningful rather than divergence-by-design):

* all memory accesses land inside the first :data:`GEN_SEGMENT_SPAN`
  bytes of the data or heap segment (valid for any harness segment
  size ≥ that span) or at :data:`HOLE_ADDRESS`, an address that is
  inside the SFI sandbox but unmapped under every layout — so SFI store
  masking is the identity and both engines observe the same fault;
* ``r14`` (link) and ``r15`` (sp) are never general targets: the return
  sentinel differs between the interpreter and translated code by
  design, so the harness excludes r14 from comparison and programs
  restore it around calls;
* the only backward branch is the counted-loop template with a reserved
  counter register, so every program terminates without fuel pressure;
* the last instruction is always ``jr r14`` (return through the
  sentinel), so execution cannot fall off the end of the code segment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.omnivm.isa import VMInstr
from repro.omnivm.linker import LinkedProgram, link
from repro.omnivm.memory import DATA_BASE, HEAP_BASE
from repro.omnivm.objfile import ObjectModule
from repro.utils.bits import s32

#: Memory window the generator confines loads/stores to — programs stay
#: valid for any module segment size >= this span.
GEN_SEGMENT_SPAN = 1 << 16

#: In-sandbox, never-mapped address (above the stack segment, below the
#: sandbox limit) used by the exception-model template: SFI masking is
#: the identity here, so interpreter and targets fault identically.
HOLE_ADDRESS = 0x23800000

#: Integer registers templates may freely write.  r9/r10/r12 are
#: generator-internal (indirect-jump pointer, link save, loop counter);
#: r14/r15 are the ABI link and stack registers.
WRITABLE_INT_REGS = (0, 1, 2, 3, 4, 5, 6, 7, 8, 11, 13)
REG_JTGT = 9
REG_RASAVE = 10
REG_LOOP = 12

WRITABLE_FP_REGS = tuple(range(16))

#: Interesting 32-bit values (signed canonical form for ``li``).
INTERESTING_INTS = (
    0, 1, 2, -1, -2, 3, 7, 8, 31, 32, 33, 255, -255,
    0x7F, 0x80, 0xFF, 0x100, 0x7FFF, 0x8000, 0xFFFF, 0x10000,
    0x7FFFFFFF, -0x80000000, -0x7FFFFFFF, 0x40000000, -0x40000000,
    s32(0xDEADBEEF), s32(0xAAAAAAAA), s32(0x55555555),
)

_ALU_RR = ("add", "sub", "mul", "and", "or", "xor", "sll", "srl", "sra",
           "seq", "sne", "slt", "sle", "sgt", "sge",
           "sltu", "sleu", "sgtu", "sgeu")
_ALU_RI = ("addi", "muli", "andi", "ori", "xori", "slli", "srli", "srai",
           "seqi", "snei", "slti", "slei", "sgti", "sgei",
           "sltui", "sleui", "sgtui", "sgeui")
_DIV_OPS = ("div", "divu", "rem", "remu")
_EXT_OPS = ("sext8", "sext16", "zext8", "zext16")
_SHIFT_EDGE_AMOUNTS = (0, 1, 7, 8, 15, 16, 31, 32, 33, 63, 64, 255, -1)
_FP_BIN = ("fadds", "fsubs", "fmuls", "faddd", "fsubd", "fmuld")
_FP_UN = ("fnegs", "fnegd", "fabss", "fabsd", "fmovs", "fmovd")
_FP_CMP = ("fceqs", "fclts", "fcles", "fceqd", "fcltd", "fcled")
_BRANCH_RR = ("beq", "bne", "blt", "ble", "bgt", "bge",
              "bltu", "bleu", "bgtu", "bgeu")
_BRANCH_RI = ("beqi", "bnei", "blti", "blei", "bgti", "bgei",
              "bltui", "bleui", "bgtui", "bgeui")


@dataclass
class GenProgram:
    """A generated program: labelled statement list plus a data image.

    ``stmts`` is a list of ``("label", name)`` / ``("instr", VMInstr)``
    tuples — the representation the minimizer shrinks, rebuilt into a
    :class:`LinkedProgram` on demand so label resolution stays correct
    whatever instructions are dropped.
    """

    name: str
    stmts: list = field(default_factory=list)
    data: bytes = b""

    def instructions(self) -> list[VMInstr]:
        return [stmt[1] for stmt in self.stmts if stmt[0] == "instr"]

    def build(self) -> LinkedProgram:
        obj = ObjectModule(self.name)
        obj.data = self.data
        index = 0
        obj.define("main", "text", 0, is_global=True)
        for kind, payload in self.stmts:
            if kind == "label":
                obj.define(payload, "text", index * 8, is_global=False)
            else:
                obj.text.append(payload)
                index += 1
        return link([obj], name=self.name)

    def listing(self) -> str:
        lines = [f"# program {self.name} ({len(self.data)} data bytes)"]
        for kind, payload in self.stmts:
            if kind == "label":
                lines.append(f"{payload}:")
            else:
                lines.append(f"    {payload}")
        return "\n".join(lines)


class ProgramGenerator:
    """Deterministic program factory: ``program(i)`` depends only on
    ``(seed, i)``."""

    def __init__(self, seed: str | int = "difftest"):
        self.seed = str(seed)

    def program(self, index: int) -> GenProgram:
        rng = random.Random(f"{self.seed}:{index}")
        return _Builder(f"dt_{self.seed}_{index}", rng).generate()


class _Builder:
    def __init__(self, name: str, rng: random.Random):
        self.rng = rng
        self.prog = GenProgram(name)
        self._label_counter = 0
        self._used_handler = False

    # -- emission helpers ---------------------------------------------------

    def emit(self, op: str, **fields) -> None:
        self.prog.stmts.append(("instr", VMInstr(op, **fields)))

    def label(self) -> str:
        self._label_counter += 1
        return f"L{self._label_counter}"

    def place(self, name: str) -> None:
        self.prog.stmts.append(("label", name))

    # -- random operands ----------------------------------------------------

    def reg(self) -> int:
        return self.rng.choice(WRITABLE_INT_REGS)

    def freg(self) -> int:
        return self.rng.choice(WRITABLE_FP_REGS)

    def int_const(self) -> int:
        if self.rng.random() < 0.6:
            return self.rng.choice(INTERESTING_INTS)
        return s32(self.rng.getrandbits(32))

    # -- program assembly ---------------------------------------------------

    def generate(self) -> GenProgram:
        rng = self.rng
        self.prog.data = bytes(rng.getrandbits(8) for _ in range(64))
        self._prologue()
        templates = (
            (self._alu_block, 4),
            (self._ext_shift_block, 2),
            (self._div_block, 2),
            (self._fp_block, 3),
            (self._mem_block, 3),
            (self._branch_block, 2),
            (self._loop_block, 1),
            (self._call_block, 1),
            (self._ijump_block, 1),
            (self._trap_block, 1),
            (self._handler_block, 1),
        )
        population = [fn for fn, weight in templates for _ in range(weight)]
        for _ in range(rng.randint(3, 7)):
            rng.choice(population)()
        self.emit("jr", rs=14)
        return self.prog

    def _prologue(self) -> None:
        for reg in WRITABLE_INT_REGS:
            self.emit("li", rd=reg, imm=self.int_const())
        self.emit("li", rd=REG_LOOP, imm=0)
        self.emit("li", rd=REG_JTGT, imm=0)
        self.emit("li", rd=REG_RASAVE, imm=0)
        # Seed a few FP registers through the int->FP converters; divide
        # by 8 (exact in binary) so fractional values appear too.
        scratch = self.reg()
        for fp in self.rng.sample(WRITABLE_FP_REGS, 6):
            self.emit("li", rd=scratch, imm=self.int_const())
            op = self.rng.choice(("cvtdw", "cvtsw", "cvtdwu", "cvtswu"))
            self.emit(op, fd=fp, rs=scratch)
            if self.rng.random() < 0.5:
                self.emit("li", rd=scratch, imm=8)
                self.emit("cvtdw", fd=15, rs=scratch)
                self.emit("fdivd", fd=fp, fs=fp, ft=15)

    # -- templates ----------------------------------------------------------

    def _alu_block(self) -> None:
        rng = self.rng
        for _ in range(rng.randint(3, 8)):
            if rng.random() < 0.5:
                self.emit(rng.choice(_ALU_RR), rd=self.reg(),
                          rs=self.reg(), rt=self.reg())
            else:
                self.emit(rng.choice(_ALU_RI), rd=self.reg(),
                          rs=self.reg(), imm=self.int_const())

    def _ext_shift_block(self) -> None:
        rng = self.rng
        for _ in range(rng.randint(2, 5)):
            if rng.random() < 0.5:
                self.emit(rng.choice(_EXT_OPS), rd=self.reg(), rs=self.reg())
            else:
                op = rng.choice(("slli", "srli", "srai", "sll", "srl", "sra"))
                if op.endswith("i"):
                    self.emit(op, rd=self.reg(), rs=self.reg(),
                              imm=rng.choice(_SHIFT_EDGE_AMOUNTS))
                else:
                    amount = self.reg()
                    if rng.random() < 0.5:
                        self.emit("li", rd=amount,
                                  imm=rng.choice(_SHIFT_EDGE_AMOUNTS))
                    self.emit(op, rd=self.reg(), rs=self.reg(), rt=amount)

    def _div_block(self) -> None:
        rng = self.rng
        divisor = self.reg()
        if rng.random() < 0.3:
            # Edge constants: INT32_MIN / -1 and divide-by-zero paths.
            self.emit("li", rd=divisor, imm=rng.choice((0, -1, 1, -2)))
            dividend = self.reg()
            if rng.random() < 0.5:
                self.emit("li", rd=dividend, imm=-0x80000000)
        else:
            self.emit("ori", rd=divisor, rs=divisor, imm=1)
        self.emit(rng.choice(_DIV_OPS), rd=self.reg(),
                  rs=self.reg(), rt=divisor)

    def _fp_block(self) -> None:
        rng = self.rng
        for _ in range(rng.randint(2, 6)):
            roll = rng.random()
            if roll < 0.35:
                self.emit(rng.choice(_FP_BIN), fd=self.freg(),
                          fs=self.freg(), ft=self.freg())
            elif roll < 0.5:
                self.emit(rng.choice(_FP_UN), fd=self.freg(), fs=self.freg())
            elif roll < 0.65:
                rd = self.reg()
                self.emit(rng.choice(_FP_CMP), rd=rd,
                          fs=self.freg(), ft=self.freg())
                if rng.random() < 0.5:
                    # Compare-then-branch-on-zero: the pattern cc-profile
                    # translators fuse into a native conditional branch.
                    skip = self.label()
                    self.emit(rng.choice(("beqi", "bnei")), rs=rd,
                              imm2=0, label=skip)
                    self.emit("addi", rd=self.reg(), rs=self.reg(), imm=1)
                    self.place(skip)
            elif roll < 0.8:
                op = rng.choice(("cvtws", "cvtwd", "cvtwus", "cvtwud"))
                self.emit(op, rd=self.reg(), fs=self.freg())
            else:
                op = rng.choice(("cvtdw", "cvtsw", "cvtdwu", "cvtswu",
                                 "cvtds", "cvtsd"))
                if op in ("cvtds", "cvtsd"):
                    self.emit(op, fd=self.freg(), fs=self.freg())
                else:
                    self.emit(op, fd=self.freg(), rs=self.reg())
            if rng.random() < 0.3:
                # Guarded FP divide: divisor converted from a non-zero int.
                scratch = self.reg()
                self.emit("li", rd=scratch,
                          imm=rng.choice((2, 3, -5, 7, 64, -1)))
                self.emit("cvtdw", fd=14, rs=scratch)
                op = rng.choice(("fdivd", "fdivs"))
                self.emit(op, fd=self.freg(), fs=self.freg(), ft=14)

    def _mem_block(self) -> None:
        rng = self.rng
        base_addr = rng.choice((DATA_BASE, HEAP_BASE)) + 8 * rng.randrange(
            (GEN_SEGMENT_SPAN - 64) // 8
        )
        base = self.reg()
        index = self.reg()
        while index == base:
            index = self.reg()
        # Load destinations must not clobber the live base/index
        # registers: a corrupted base would turn later stores wild, and
        # wild stores diverge by design (SFI redirects, the interpreter
        # detects).
        def dest() -> int:
            reg = self.reg()
            while reg in (base, index):
                reg = self.reg()
            return reg

        self.emit("li", rd=base, imm=s32(base_addr))
        for _ in range(rng.randint(2, 6)):
            size = rng.choice((1, 2, 4, 8))
            offset = rng.randrange(0, 56 // size) * size
            if size == 8:
                if rng.random() < 0.6:
                    self.emit("sfd", ft=self.freg(), rs=base, imm=offset)
                self.emit("lfd", fd=self.freg(), rs=base, imm=offset)
                continue
            if rng.random() < 0.3 and size == 4:
                if rng.random() < 0.5:
                    self.emit("sfs", ft=self.freg(), rs=base, imm=offset)
                self.emit("lfs", fd=self.freg(), rs=base, imm=offset)
                continue
            store_op = {1: "sb", 2: "sh", 4: "sw"}[size]
            load_op = rng.choice({1: ("lb", "lbu"), 2: ("lh", "lhu"),
                                  4: ("lw", "lw")}[size])
            if rng.random() < 0.3:
                # Indexed addressing: base + index register.
                self.emit("li", rd=index, imm=offset)
                self.emit(store_op + "x", rt=dest(), rs=base, rd=index)
                self.emit(load_op + "x", rd=dest(), rs=base, rt=index)
            else:
                self.emit(store_op, rt=dest(), rs=base, imm=offset)
                self.emit(load_op, rd=dest(), rs=base, imm=offset)

    def _branch_block(self) -> None:
        rng = self.rng
        skip = self.label()
        if rng.random() < 0.5:
            self.emit(rng.choice(_BRANCH_RR), rs=self.reg(), rt=self.reg(),
                      label=skip)
        else:
            self.emit(rng.choice(_BRANCH_RI), rs=self.reg(),
                      imm2=rng.choice((0, 1, -1, 5, 100, -100)), label=skip)
        for _ in range(rng.randint(1, 3)):
            self.emit(rng.choice(_ALU_RI), rd=self.reg(), rs=self.reg(),
                      imm=self.int_const())
        self.place(skip)

    def _loop_block(self) -> None:
        rng = self.rng
        top = self.label()
        self.emit("li", rd=REG_LOOP, imm=rng.randint(2, 6))
        self.place(top)
        for _ in range(rng.randint(1, 3)):
            self.emit(rng.choice(_ALU_RR), rd=self.reg(), rs=self.reg(),
                      rt=self.reg())
        self.emit("addi", rd=REG_LOOP, rs=REG_LOOP, imm=-1)
        self.emit("bgti", rs=REG_LOOP, imm2=0, label=top)

    def _call_block(self) -> None:
        rng = self.rng
        func = self.label()
        cont = self.label()
        # The sentinel return address differs per engine, so it must not
        # leak into a compared register: save through r10, then zero it.
        self.emit("mov", rd=REG_RASAVE, rs=14)
        self.emit("jal", label=func)
        self.emit("mov", rd=14, rs=REG_RASAVE)
        self.emit("li", rd=REG_RASAVE, imm=0)
        self.emit("j", label=cont)
        self.place(func)
        for _ in range(rng.randint(1, 2)):
            self.emit(rng.choice(_ALU_RI), rd=self.reg(), rs=self.reg(),
                      imm=self.int_const())
        self.emit("jr", rs=14)
        self.place(cont)

    def _ijump_block(self) -> None:
        target = self.label()
        self.emit("li", rd=REG_JTGT, label=target)
        self.emit("jr", rs=REG_JTGT)
        for _ in range(self.rng.randint(1, 2)):
            self.emit("addi", rd=self.reg(), rs=self.reg(), imm=1)
        self.place(target)

    def _trap_block(self) -> None:
        skip = self.label()
        self.emit(self.rng.choice(("bne", "beq")), rs=self.reg(),
                  rt=self.reg(), label=skip)
        self.emit("trap", imm=self.rng.randint(1, 200))
        self.place(skip)

    def _handler_block(self) -> None:
        if self._used_handler:
            return self._alu_block()
        self._used_handler = True
        handler = self.label()
        scratch = self.reg()
        self.emit("li", rd=scratch, label=handler)
        self.emit("sethnd", rs=scratch)
        addr = self.reg()
        self.emit("li", rd=addr, imm=s32(HOLE_ADDRESS))
        if self.rng.random() < 0.5:
            self.emit("sw", rt=self.reg(), rs=addr, imm=0)
        else:
            self.emit("lw", rd=self.reg(), rs=addr, imm=0)
        # Unreachable: the faulting access always redirects to the handler.
        self.emit("addi", rd=scratch, rs=scratch, imm=99)
        self.place(handler)
