"""Delta-debugging minimizer for divergent programs.

Shrinks a generated program's statement list while a caller-supplied
predicate (``still interesting?``) holds, using the classic ddmin
strategy: try removing large contiguous chunks of instructions first,
halving the chunk size on failure, down to single instructions.

Labels are never removal candidates (an instruction referencing a
deleted label simply fails to link, which the predicate reports as
``False``), and the final statement — the generator's ``jr r14``
epilogue — is pinned so a candidate cannot run off the end of the code
segment, which would manufacture an unrelated divergence instead of
shrinking the real one.
"""

from __future__ import annotations

from typing import Callable


def minimize_program(
    stmts: list,
    still_interesting: Callable[[list], bool],
    max_checks: int = 2000,
) -> tuple[list, int]:
    """Shrink *stmts* while *still_interesting* holds.

    Returns ``(minimized statements, predicate evaluations)``.  The
    input list is not modified.
    """
    current = list(stmts)
    checks = 0

    def removable_indices(items: list) -> list[int]:
        # Instructions only, and never the final (epilogue) statement.
        return [
            i for i, stmt in enumerate(items[:-1]) if stmt[0] == "instr"
        ]

    chunk = max(1, len(removable_indices(current)) // 2)
    while chunk >= 1 and checks < max_checks:
        indices = removable_indices(current)
        position = 0
        removed_any = False
        while position < len(indices) and checks < max_checks:
            drop = set(indices[position:position + chunk])
            candidate = [
                stmt for i, stmt in enumerate(current) if i not in drop
            ]
            checks += 1
            if still_interesting(candidate):
                current = candidate
                indices = removable_indices(current)
                removed_any = True
                # Restart the scan at the same position: indices shifted.
            else:
                position += chunk
        if chunk == 1 and not removed_any:
            break
        if chunk > 1:
            chunk //= 2
        elif not removed_any:
            break
    return current, checks
