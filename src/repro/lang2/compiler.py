"""MiniLisp: a second, unrelated source language targeting OmniVM.

The paper's central claim is *language independence*: because safety
comes from SFI rather than from a type system, any language that can
compile to the OmniVM instruction set can ship mobile code.  MiniLisp
demonstrates this concretely — a Lisp with a completely different surface
syntax and semantics front-ends onto the same IR, optimizer, register
allocator and OmniVM code generator as MiniC, and its object modules
**link against MiniC modules** (Figure 2's many-languages → one-substrate
picture, exercised end-to-end by ``repro.evalharness.figures.figure2_demo``).

The language (integers only):

.. code-block:: lisp

    (defun name (a b ...) body...)        ; last body form is the result
    (if c t e)  (let ((x e) ...) body...) (while c body...)
    (set! x e)  (progn e...)
    (+ - * / mod < <= > >= = /=)  (emit e)  calls: (f args...)

Top-level ``defun`` names become global symbols, so a MiniC module can
declare ``extern int name(int, ...)`` and call straight into Lisp code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompileError, ParseError
from repro.ir.ir import (
    BasicBlock,
    Const,
    Function,
    Instr,
    Module,
    Operand,
    Temp,
)
from repro.omnivm.codegen import generate_object
from repro.omnivm.objfile import ObjectModule
from repro.opt import addrfold, dce
from repro.opt.pipeline import OptOptions, optimize_module

_ARITH = {"+": "add", "-": "sub", "*": "mul", "/": "div", "mod": "rem"}
_CMP = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge", "=": "eq", "/=": "ne"}


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------


def read_forms(text: str) -> list:
    """Parse s-expressions into nested Python lists of str/int."""
    tokens = _tokenize(text)
    forms = []
    position = [0]
    while position[0] < len(tokens):
        forms.append(_read(tokens, position))
    return forms


def _tokenize(text: str) -> list[str]:
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
        elif ch == ";":
            while i < len(text) and text[i] != "\n":
                i += 1
        elif ch in "()":
            out.append(ch)
            i += 1
        else:
            j = i
            while j < len(text) and text[j] not in " \t\r\n();":
                j += 1
            out.append(text[i:j])
            i = j
    return out


def _read(tokens: list[str], position: list[int]):
    if position[0] >= len(tokens):
        raise ParseError("unexpected end of MiniLisp input")
    token = tokens[position[0]]
    position[0] += 1
    if token == "(":
        items = []
        while position[0] < len(tokens) and tokens[position[0]] != ")":
            items.append(_read(tokens, position))
        if position[0] >= len(tokens):
            raise ParseError("missing ')' in MiniLisp input")
        position[0] += 1
        return items
    if token == ")":
        raise ParseError("unexpected ')' in MiniLisp input")
    try:
        return int(token)
    except ValueError:
        return token


# ---------------------------------------------------------------------------
# Compiler to IR
# ---------------------------------------------------------------------------


@dataclass
class _FnCtx:
    func: Function
    block: BasicBlock
    env: dict[str, Temp]
    label_counter: int = 0

    def new_label(self, hint: str) -> str:
        self.label_counter += 1
        return f".lisp{self.label_counter}_{hint}"

    def start(self, label: str) -> None:
        block = BasicBlock(label)
        self.func.blocks.append(block)
        self.block = block

    def emit(self, instr: Instr) -> None:
        if instr.is_terminator():
            if self.block.terminator is None:
                self.block.terminator = instr
        else:
            self.block.instrs.append(instr)

    def temp(self) -> Temp:
        return self.func.new_temp("i32")


class MiniLispCompiler:
    """Compiles MiniLisp source to an IR module."""

    def __init__(self, module_name: str = "lisp"):
        self.module = Module(module_name)
        self.functions: dict[str, int] = {}  # name -> arity

    def compile(self, source: str) -> Module:
        forms = read_forms(source)
        # Pass 1: signatures, so forward/mutual recursion works.
        for form in forms:
            if not (isinstance(form, list) and form and form[0] == "defun"):
                raise CompileError(
                    "MiniLisp top level allows only (defun ...) forms"
                )
            if len(form) < 4 or not isinstance(form[1], str) or not isinstance(
                form[2], list
            ):
                raise CompileError(f"malformed defun: {form!r}")
            self.functions[form[1]] = len(form[2])
        for form in forms:
            self._compile_defun(form)
        return self.module

    def _compile_defun(self, form: list) -> None:
        name, params, body = form[1], form[2], form[3:]
        func = Function(name, return_ty="i32")
        entry = BasicBlock("entry")
        func.blocks.append(entry)
        ctx = _FnCtx(func, entry, {})
        for param in params:
            if not isinstance(param, str):
                raise CompileError(f"bad parameter {param!r} in {name}")
            temp = func.new_temp("i32")
            func.params.append(temp)
            ctx.env[param] = temp
        result = self._body(ctx, body)
        ctx.emit(Instr("ret", args=[result]))
        # Terminate any dangling blocks (e.g. after a while loop).
        for block in func.blocks:
            if block.terminator is None:
                block.terminator = Instr("ret", args=[Const(0, "i32")])
        self.module.functions.append(func)

    def _body(self, ctx: _FnCtx, forms: list) -> Operand:
        result: Operand = Const(0, "i32")
        for form in forms:
            result = self._expr(ctx, form)
        return result

    def _expr(self, ctx: _FnCtx, form) -> Operand:
        if isinstance(form, int):
            return Const(form, "i32")
        if isinstance(form, str):
            if form not in ctx.env:
                raise CompileError(f"unbound MiniLisp variable {form!r}")
            return ctx.env[form]
        if not isinstance(form, list) or not form:
            raise CompileError(f"cannot compile form {form!r}")
        head = form[0]
        if head in _ARITH:
            return self._arith(ctx, head, form[1:])
        if head in _CMP:
            a = self._expr(ctx, form[1])
            b = self._expr(ctx, form[2])
            dest = ctx.temp()
            ctx.emit(Instr("cmp", dest, [a, b], subop=_CMP[head],
                           cmp_ty="i32"))
            return dest
        if head == "if":
            return self._if(ctx, form)
        if head == "let":
            return self._let(ctx, form)
        if head == "while":
            return self._while(ctx, form)
        if head == "set!":
            value = self._expr(ctx, form[2])
            target = ctx.env.get(form[1])
            if target is None:
                raise CompileError(f"set! of unbound variable {form[1]!r}")
            ctx.emit(Instr("copy", target, [value]))
            return target
        if head == "progn":
            return self._body(ctx, form[1:])
        if head == "emit":
            value = self._expr(ctx, form[1])
            ctx.emit(Instr("hostcall", None, [value], name="emit_int"))
            return value
        if isinstance(head, str):
            if head in self.functions:
                arity = self.functions[head]
                if arity != len(form) - 1:
                    raise CompileError(
                        f"{head} expects {arity} args, got {len(form) - 1}"
                    )
            args = [self._expr(ctx, arg) for arg in form[1:]]
            dest = ctx.temp()
            ctx.emit(Instr("call", dest, args, name=head))
            return dest
        raise CompileError(f"cannot compile form {form!r}")

    def _arith(self, ctx: _FnCtx, op: str, args: list) -> Operand:
        if op == "-" and len(args) == 1:
            operand = self._expr(ctx, args[0])
            dest = ctx.temp()
            ctx.emit(Instr("bin", dest, [Const(0, "i32"), operand],
                           subop="sub"))
            return dest
        if len(args) < 2:
            raise CompileError(f"({op} ...) needs at least two operands")
        acc = self._expr(ctx, args[0])
        for arg in args[1:]:
            value = self._expr(ctx, arg)
            dest = ctx.temp()
            ctx.emit(Instr("bin", dest, [acc, value], subop=_ARITH[op]))
            acc = dest
        return acc

    def _if(self, ctx: _FnCtx, form: list) -> Operand:
        if len(form) not in (3, 4):
            raise CompileError("(if c t [e]) arity")
        cond = self._expr(ctx, form[1])
        then_label = ctx.new_label("then")
        else_label = ctx.new_label("else")
        end_label = ctx.new_label("endif")
        result = ctx.temp()
        ctx.emit(Instr("br", args=[cond, Const(0, "i32")], subop="ne",
                       cmp_ty="i32", targets=[then_label, else_label]))
        ctx.start(then_label)
        then_value = self._expr(ctx, form[2])
        ctx.emit(Instr("copy", result, [then_value]))
        ctx.emit(Instr("jump", targets=[end_label]))
        ctx.start(else_label)
        else_value = self._expr(ctx, form[3]) if len(form) == 4 else Const(0, "i32")
        ctx.emit(Instr("copy", result, [else_value]))
        ctx.emit(Instr("jump", targets=[end_label]))
        ctx.start(end_label)
        return result

    def _let(self, ctx: _FnCtx, form: list) -> Operand:
        bindings = form[1]
        saved = dict(ctx.env)
        for binding in bindings:
            if not (isinstance(binding, list) and len(binding) == 2):
                raise CompileError(f"bad let binding {binding!r}")
            value = self._expr(ctx, binding[1])
            temp = ctx.temp()
            ctx.emit(Instr("copy", temp, [value]))
            ctx.env[binding[0]] = temp
        result = self._body(ctx, form[2:])
        # A let's result may be a bound temp about to go out of scope;
        # copy it so the value survives the scope restoration.
        out = ctx.temp()
        ctx.emit(Instr("copy", out, [result]))
        ctx.env = saved
        return out

    def _while(self, ctx: _FnCtx, form: list) -> Operand:
        head_label = ctx.new_label("while")
        body_label = ctx.new_label("body")
        end_label = ctx.new_label("endwhile")
        ctx.emit(Instr("jump", targets=[head_label]))
        ctx.start(head_label)
        cond = self._expr(ctx, form[1])
        ctx.emit(Instr("br", args=[cond, Const(0, "i32")], subop="ne",
                       cmp_ty="i32", targets=[body_label, end_label]))
        ctx.start(body_label)
        self._body(ctx, form[2:])
        ctx.emit(Instr("jump", targets=[head_label]))
        ctx.start(end_label)
        return Const(0, "i32")


def compile_minilisp_to_ir(source: str, module_name: str = "lisp") -> Module:
    """MiniLisp → optimized IR (same pipeline position as MiniC)."""
    module = MiniLispCompiler(module_name).compile(source)
    optimize_module(module, OptOptions(level=2))
    for func in module.functions:
        addrfold.run(func)
        dce.run(func)
    return module


def compile_minilisp(source: str, module_name: str = "lisp",
                     num_regs: int = 16) -> ObjectModule:
    """MiniLisp → OmniVM object module, linkable with MiniC objects."""
    module = compile_minilisp_to_ir(source, module_name)
    return generate_object(module, num_regs=num_regs)
