"""Segmented virtual memory with host-imposed permissions.

OmniVM presents modules with a segmented 32-bit address space; the host
assigns each segment read/write/execute permissions, and the VM raises an
access violation (delivered through the virtual exception model) on any
unauthorized access.  The same class backs the *target machine* simulators,
where it additionally hosts the host-application segment that SFI must
protect: an unsandboxed wild store can land there, and the safety tests
show SFI preventing exactly that.

Addresses are 32-bit.  The default layout gives every module:

========  ===========  =====================================
segment   base         permissions
========  ===========  =====================================
code      0x1000_0000  read + execute
data      0x2000_0000  read + write
heap      0x3000_0000  read + write
stack     0x4000_0000  read + write
========  ===========  =====================================

Segment sizes are powers of two so the SFI masks are single and/or pairs.
Address 0 is never mapped: null dereferences always fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AccessViolation
from repro.utils.bits import bits_to_f32, bits_to_f64, f32_to_bits, f64_to_bits, u32

PERM_READ = 1
PERM_WRITE = 2
PERM_EXEC = 4

CODE_BASE = 0x10000000
# The three writable segments live inside ONE 64 MiB sandbox region
# [0x2000_0000, 0x2400_0000): SFI sandboxes stores with a single and/or
# pair (offset mask + region base), exactly like the original single
# data-segment design of Wahbe et al.  A wild store can land anywhere in
# the region (possibly faulting on an unmapped hole, possibly corrupting
# the module's *own* data) but never outside it.
DATA_BASE = 0x20000000
HEAP_BASE = 0x21000000
STACK_BASE = 0x22000000
HOST_BASE = 0x50000000

#: SFI sandbox region parameters (see repro.sfi.policy).
SANDBOX_BASE = 0x20000000
SANDBOX_MASK = 0x03FFFFFF  # 64 MiB of offset bits

#: Default segment size: 16 MiB, so offsets fit in 24 bits and the SFI
#: mask is ``0x00FF_FFFF`` with the segment tag in the top byte.
DEFAULT_SEGMENT_SIZE = 1 << 24

SEGMENT_OFFSET_MASK = DEFAULT_SEGMENT_SIZE - 1


@dataclass
class Segment:
    name: str
    base: int
    size: int
    perms: int
    data: bytearray = field(repr=False, default_factory=bytearray)

    def __post_init__(self) -> None:
        if not self.data:
            self.data = bytearray(self.size)
        if len(self.data) != self.size:
            raise ValueError(f"segment {self.name}: data/size mismatch")

    @property
    def limit(self) -> int:
        return self.base + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        return self.base <= address and address + length <= self.limit


class Memory:
    """A collection of segments with permission-checked accessors."""

    def __init__(self) -> None:
        self.segments: list[Segment] = []
        self._last: Segment | None = None
        #: Incremented on every successful write; tests use it to detect
        #: unexpected mutation.
        self.write_count = 0
        #: Bumped whenever segment permissions change; the JIT's inline
        #: memory caches are valid only while this stands still.
        self.perm_epoch = 0

    # -- segment management -------------------------------------------------

    def add_segment(self, name: str, base: int, size: int, perms: int,
                    data: bytes | None = None) -> Segment:
        base = u32(base)
        for seg in self.segments:
            if base < seg.limit and seg.base < base + size:
                raise ValueError(
                    f"segment {name} [{base:#x},{base + size:#x}) overlaps {seg.name}"
                )
        payload = bytearray(size)
        if data is not None:
            payload[: len(data)] = data
        segment = Segment(name, base, size, perms, payload)
        self.segments.append(segment)
        return segment

    def segment_named(self, name: str) -> Segment:
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise KeyError(f"no segment named {name!r}")

    def set_perms(self, name: str, perms: int) -> None:
        """Host-imposed permission change (e.g. revoke write on a page)."""
        self.segment_named(name).perms = perms
        self.perm_epoch += 1

    def find(self, address: int, length: int = 1) -> Segment | None:
        last = self._last
        if last is not None and last.contains(address, length):
            return last
        for seg in self.segments:
            if seg.contains(address, length):
                self._last = seg
                return seg
        return None

    def _segment_for(self, address: int, length: int, perm: int,
                     kind: str) -> Segment:
        address = u32(address)
        seg = self.find(address, length)
        if seg is None:
            raise AccessViolation(
                f"{kind} of {length} bytes at unmapped address {address:#010x}",
                address, kind,
            )
        if not seg.perms & perm:
            raise AccessViolation(
                f"{kind} at {address:#010x} denied by segment {seg.name!r} "
                f"permissions", address, kind,
            )
        return seg

    # -- typed accessors ----------------------------------------------------

    def load(self, address: int, size: int, signed: bool = False) -> int:
        seg = self._segment_for(address, size, PERM_READ, "load")
        offset = address - seg.base
        raw = int.from_bytes(seg.data[offset:offset + size], "little")
        if signed and raw & (1 << (size * 8 - 1)):
            raw -= 1 << (size * 8)
        return raw

    def store(self, address: int, size: int, value: int) -> None:
        seg = self._segment_for(address, size, PERM_WRITE, "store")
        offset = address - seg.base
        seg.data[offset:offset + size] = (value & ((1 << (size * 8)) - 1)).to_bytes(
            size, "little"
        )
        self.write_count += 1

    # -- word fast path ------------------------------------------------------
    #
    # The predecoded execution engines issue almost all of their traffic as
    # aligned 32-bit words.  These accessors hit the one-entry segment
    # cache, check permission and bounds inline, and fall back to the
    # generic size-dispatching path (which raises the exact same
    # AccessViolation messages) for anything unusual: a different segment,
    # a segment-straddling access, or a permission the cached segment
    # lacks.

    def load_u32(self, address: int) -> int:
        seg = self._last
        if (seg is not None and seg.perms & PERM_READ
                and seg.base <= address and address + 4 <= seg.limit):
            offset = address - seg.base
            return int.from_bytes(seg.data[offset:offset + 4], "little")
        return self.load(address, 4, False)

    def store_u32(self, address: int, value: int) -> None:
        seg = self._last
        if (seg is not None and seg.perms & PERM_WRITE
                and seg.base <= address and address + 4 <= seg.limit):
            offset = address - seg.base
            seg.data[offset:offset + 4] = (value & 0xFFFFFFFF).to_bytes(
                4, "little")
            self.write_count += 1
            return
        self.store(address, 4, value)

    def load_f32(self, address: int) -> float:
        return bits_to_f32(self.load(address, 4))

    def load_f64(self, address: int) -> float:
        return bits_to_f64(
            self.load(address, 4) | (self.load(address + 4, 4) << 32)
        )

    def store_f32(self, address: int, value: float) -> None:
        self.store(address, 4, f32_to_bits(value))

    def store_f64(self, address: int, value: float) -> None:
        bits = f64_to_bits(value)
        self.store(address, 4, bits & 0xFFFFFFFF)
        self.store(address + 4, 4, bits >> 32)

    def fetch_check(self, address: int, size: int = 1) -> None:
        """Verify that *address* is executable (instruction fetch)."""
        self._segment_for(address, size, PERM_EXEC, "execute")

    # -- bulk helpers ---------------------------------------------------------

    def write_bytes(self, address: int, data: bytes) -> None:
        for i, byte in enumerate(data):
            self.store(address + i, 1, byte)

    def read_bytes(self, address: int, length: int) -> bytes:
        return bytes(self.load(address + i, 1) for i in range(length))

    def read_cstring(self, address: int, max_len: int = 1 << 16) -> bytes:
        out = bytearray()
        for i in range(max_len):
            byte = self.load(address + i, 1)
            if byte == 0:
                return bytes(out)
            out.append(byte)
        raise AccessViolation("unterminated string", address, "load")


def standard_module_memory(
    code_image: bytes,
    data_image: bytes,
    segment_size: int = DEFAULT_SEGMENT_SIZE,
    heap_size: int | None = None,
    stack_size: int = 1 << 20,
    data_writable: bool = True,
) -> Memory:
    """Build the standard module address space used by loader and tests."""
    memory = Memory()
    memory.add_segment("code", CODE_BASE, segment_size,
                       PERM_READ | PERM_EXEC, code_image)
    data_perms = PERM_READ | (PERM_WRITE if data_writable else 0)
    memory.add_segment("data", DATA_BASE, segment_size, data_perms, data_image)
    memory.add_segment("heap", HEAP_BASE, heap_size or segment_size,
                       PERM_READ | PERM_WRITE)
    memory.add_segment("stack", STACK_BASE, stack_size, PERM_READ | PERM_WRITE)
    return memory


STACK_TOP = STACK_BASE + (1 << 20) - 16
