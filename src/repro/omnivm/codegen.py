"""Code generation from the IR to OmniVM object modules.

This is the back end of the "compiler to OmniVM" the paper assumes (their
retargeted gcc/lcc).  By the time code reaches here, all machine-
independent optimization has happened; code generation is deliberately
straightforward — OmniVM was designed to be "a simple target for a
high-level language compiler":

* temps get OmniVM registers from the linear-scan allocator (spills go to
  frame slots, reloaded through the reserved scratch registers r5/r6 and
  f14/f15);
* memory instructions use the base+imm32 and indexed addressing modes
  selected by the :mod:`repro.opt.addrfold` pass;
* IR compare-branches map 1:1 onto OmniVM's general compare-and-branch
  instructions (immediate forms when the constant fits the 18-bit field);
* the ABI: args in r1..r4 / f1..f4 (extra args on the stack), results in
  r1/f1, r14 = ra, r15 = sp, callee-saved r8..r13 and f8..f13.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import metrics
from repro.errors import CompileError
from repro.ir import ir
from repro.ir.cfg import block_order_for_layout
from repro.ir.ir import Const, Function, GlobalRef, Instr, Module, Operand, Temp
from repro.omnivm.isa import (
    FREG_ARGS,
    INSTR_SIZE,
    REG_ARGS,
    REG_RA,
    REG_SP,
    VMInstr,
)
from repro.omnivm.objfile import DataReloc, ObjectModule
from repro.opt.addrfold import address_operands
from repro.regalloc.linearscan import (
    Assignment,
    Location,
    RegisterFile,
    allocate,
    omnivm_register_file,
)
from repro.utils.bits import align_up, s32, u32

SCRATCH = (5, 6)  # reserved integer scratch registers
FSCRATCH = (14, 15)  # reserved FP scratch registers

_IMM2_MIN, _IMM2_MAX = -(1 << 17), (1 << 17) - 1

_LOAD_OP = {"i8": "lb", "u8": "lbu", "i16": "lh", "u16": "lhu",
            "i32": "lw", "u32": "lw", "f32": "lfs", "f64": "lfd"}
_LOADX_OP = {"i8": "lbx", "u8": "lbux", "i16": "lhx", "u16": "lhux",
             "i32": "lwx", "u32": "lwx", "f32": "lfsx", "f64": "lfdx"}
_STORE_OP = {"i8": "sb", "u8": "sb", "i16": "sh", "u16": "sh",
             "i32": "sw", "u32": "sw", "f32": "sfs", "f64": "sfd"}
_STOREX_OP = {"i8": "sbx", "u8": "sbx", "i16": "shx", "u16": "shx",
              "i32": "swx", "u32": "swx", "f32": "sfsx", "f64": "sfdx"}

_BIN_RR = {"add": "add", "sub": "sub", "mul": "mul", "and": "and",
           "or": "or", "xor": "xor", "shl": "sll"}
_BIN_RI = {"add": "addi", "mul": "muli", "and": "andi",
           "or": "ori", "xor": "xori", "shl": "slli"}

_CMP_SET = {
    ("eq", True): "seq", ("ne", True): "sne", ("lt", True): "slt",
    ("le", True): "sle", ("gt", True): "sgt", ("ge", True): "sge",
    ("eq", False): "seq", ("ne", False): "sne", ("lt", False): "sltu",
    ("le", False): "sleu", ("gt", False): "sgtu", ("ge", False): "sgeu",
}

_BRANCH = {
    ("eq", True): "beq", ("ne", True): "bne", ("lt", True): "blt",
    ("le", True): "ble", ("gt", True): "bgt", ("ge", True): "bge",
    ("eq", False): "beq", ("ne", False): "bne", ("lt", False): "bltu",
    ("le", False): "bleu", ("gt", False): "bgtu", ("ge", False): "bgeu",
}

_FALU = {"add": "fadd", "sub": "fsub", "mul": "fmul", "div": "fdiv"}


@dataclass
class FrameLayout:
    """Byte offsets from sp for the pieces of a function frame."""

    out_args: int = 0
    spill_base: int = 0
    fspill_base: int = 0
    slot_base: dict[int, int] = field(default_factory=dict)
    save_base: int = 0
    ra_offset: int = 0
    size: int = 0


class FunctionEmitter:
    """Emits OmniVM code for one IR function."""

    def __init__(self, func: Function, obj: ObjectModule,
                 regfile: RegisterFile, func_index: int):
        self.func = func
        self.obj = obj
        self.regfile = regfile
        self.assignment: Assignment = allocate(func, regfile)
        self.frame = self._layout_frame()
        self.prefix = f".{func.name}"
        self.out: list[VMInstr] = []
        self.func_index = func_index

    # -- helpers -------------------------------------------------------------

    def emit(self, op: str, **operands) -> VMInstr:
        instr = VMInstr(op, **operands)
        self.out.append(instr)
        return instr

    def local_label(self, label: str) -> str:
        return f"{self.prefix}{label}"

    def mark_label(self, label: str) -> None:
        """Record that the next emitted instruction carries *label*."""
        index = len(self.out) * INSTR_SIZE
        self.obj.define(label, "text", self.text_base + index, is_global=False)

    # -- frame ------------------------------------------------------------------

    def _layout_frame(self) -> FrameLayout:
        frame = FrameLayout()
        out_args_words = 0
        for block in self.func.blocks:
            for instr in block.all_instrs():
                if instr.op in ("call", "icall", "hostcall"):
                    arg_count = len(instr.args)
                    if instr.op == "icall":
                        arg_count -= 1
                    out_args_words = max(out_args_words, max(0, arg_count - 4))
        frame.out_args = 0
        cursor = out_args_words * 8
        frame.spill_base = cursor
        cursor += self.assignment.spill_slots * 4
        cursor = align_up(cursor, 8)
        frame.fspill_base = cursor
        cursor += self.assignment.fspill_slots * 8
        for index, slot in enumerate(self.func.stack_slots):
            cursor = align_up(cursor, max(slot.align, 4))
            frame.slot_base[index] = cursor
            cursor += slot.size
        cursor = align_up(cursor, 8)
        frame.save_base = cursor
        cursor += 4 * len(self.assignment.used_callee_saved)
        cursor = align_up(cursor, 8)
        cursor += 8 * len(self.assignment.used_callee_saved_fp)
        frame.ra_offset = cursor
        cursor += 4
        frame.size = align_up(cursor, 8)
        return frame

    # -- operand access --------------------------------------------------------

    def loc(self, temp: Temp) -> Location:
        return self.assignment.locations[temp]

    def int_value(self, operand: Operand, scratch: int) -> int:
        """Materialize an integer operand into a register; returns reg no."""
        if isinstance(operand, Const):
            reg = SCRATCH[scratch]
            self.emit("li", rd=reg, imm=u32(int(operand.value)))
            return reg
        if isinstance(operand, GlobalRef):
            reg = SCRATCH[scratch]
            self.emit("li", rd=reg, label=operand.name)
            return reg
        location = self.loc(operand)
        if location.kind == "reg":
            return location.index
        reg = SCRATCH[scratch]
        self.emit("lw", rd=reg, rs=REG_SP,
                  imm=self.frame.spill_base + location.index * 4)
        return reg

    def fp_value(self, operand: Operand, scratch: int) -> int:
        if isinstance(operand, Const):
            freg = FSCRATCH[scratch]
            self._load_float_const(freg, float(operand.value), operand.ty)
            return freg
        location = self.loc(operand)
        if location.kind == "freg":
            return location.index
        freg = FSCRATCH[scratch]
        self.emit("lfd", fd=freg, rs=REG_SP,
                  imm=self.frame.fspill_base + location.index * 8)
        return freg

    def _load_float_const(self, freg: int, value: float, ty: str) -> None:
        """FP constants are materialized through the data section pool."""
        name = self.obj_float_pool(value, ty)
        reg = SCRATCH[0]
        self.emit("li", rd=reg, label=name)
        self.emit("lfs" if ty == "f32" else "lfd", fd=freg, rs=reg, imm=0)

    def obj_float_pool(self, value: float, ty: str) -> str:
        import struct as _struct

        if ty == "f32":
            payload = _struct.pack("<f", value)
        else:
            payload = _struct.pack("<d", value)
        key = (payload, ty)
        pool = getattr(self.obj, "_float_pool", None)
        if pool is None:
            pool = {}
            self.obj._float_pool = pool
        if key in pool:
            return pool[key]
        name = f".fc{len(pool)}"
        offset = align_up(len(self.obj.data), 8)
        self.obj.data = bytes(self.obj.data) + b"\x00" * (
            offset - len(self.obj.data)
        ) + payload
        self.obj.define(name, "data", offset, is_global=False)
        pool[key] = name
        return name

    def int_dest(self, temp: Temp) -> tuple[int, Location]:
        location = self.loc(temp)
        if location.kind == "reg":
            return location.index, location
        return SCRATCH[0], location

    def fp_dest(self, temp: Temp) -> tuple[int, Location]:
        location = self.loc(temp)
        if location.kind == "freg":
            return location.index, location
        return FSCRATCH[0], location

    def finish_dest(self, location: Location, reg: int) -> None:
        if location.kind == "spill":
            self.emit("sw", rt=reg, rs=REG_SP,
                      imm=self.frame.spill_base + location.index * 4)
        elif location.kind == "fspill":
            self.emit("sfd", ft=reg, rs=REG_SP,
                      imm=self.frame.fspill_base + location.index * 8)

    # -- function body ------------------------------------------------------------

    def run(self) -> None:
        self.text_base = len(self.obj.text) * INSTR_SIZE
        self.obj.define(self.func.name, "text", self.text_base, is_global=True)
        self._prologue()
        blocks = block_order_for_layout(self.func)
        for position, block in enumerate(blocks):
            self.mark_label(self.local_label(block.label))
            for instr in block.instrs:
                self._emit_instr(instr)
            next_label = blocks[position + 1].label if position + 1 < len(blocks) else None
            self._emit_terminator(block.terminator, next_label)
        self.obj.text.extend(self.out)

    def _prologue(self) -> None:
        frame = self.frame
        if frame.size:
            self.emit("addi", rd=REG_SP, rs=REG_SP, imm=-frame.size)
        self.emit("sw", rt=REG_RA, rs=REG_SP, imm=frame.ra_offset)
        offset = frame.save_base
        for reg in self.assignment.used_callee_saved:
            self.emit("sw", rt=reg, rs=REG_SP, imm=offset)
            offset += 4
        offset = align_up(offset, 8)
        for freg in self.assignment.used_callee_saved_fp:
            self.emit("sfd", ft=freg, rs=REG_SP, imm=offset)
            offset += 8
        # Move incoming arguments to their allocated homes.
        int_index = 0
        fp_index = 0
        stack_arg = 0
        moves: list[tuple[str, int, Temp]] = []
        for param in self.func.params:
            if param.ty in ("f32", "f64"):
                if fp_index < len(FREG_ARGS):
                    moves.append(("freg", FREG_ARGS[fp_index], param))
                    fp_index += 1
                else:
                    moves.append(("fstack", stack_arg, param))
                    stack_arg += 1
            else:
                if int_index < len(REG_ARGS):
                    moves.append(("reg", REG_ARGS[int_index], param))
                    int_index += 1
                else:
                    moves.append(("stack", stack_arg, param))
                    stack_arg += 1
        self._emit_param_moves(moves)

    def _move_graph(self, moves: list[tuple[int, int]], bank: str) -> None:
        """Emit a parallel register permutation/assignment using one
        scratch register.  ``moves`` is a list of (dest, src) pairs with
        distinct dests; sources may repeat.  Moves forming cycles are
        broken by parking one source in the bank's scratch register."""
        scratch = SCRATCH[1] if bank == "int" else FSCRATCH[1]
        mov = (lambda d, s: self.emit("mov", rd=d, rs=s)) if bank == "int" \
            else (lambda d, s: self.emit("fmovd", fd=d, fs=s))
        pending = [(d, s) for d, s in moves if d != s]
        while pending:
            safe_index = None
            for index, (dest, _src) in enumerate(pending):
                blocked = any(
                    s == dest for j, (_, s) in enumerate(pending) if j != index
                )
                if not blocked:
                    safe_index = index
                    break
            if safe_index is not None:
                dest, src = pending.pop(safe_index)
                mov(dest, src)
            else:
                # Pure cycle: park the first source, retarget its readers.
                _, src = pending[0]
                mov(scratch, src)
                pending = [
                    (d, scratch if s == src else s) for d, s in pending
                ]
                pending = [(d, s) for d, s in pending if d != s]

    def _emit_param_moves(self, moves) -> None:
        """Move ABI argument registers into allocated homes.

        Ordering matters: (1) spill-resident register params store to the
        frame while every argument register still holds its value; (2)
        the register-to-register permutation runs with cycle breaking;
        (3) only then may stack-passed params load into their homes —
        a home may BE an argument register, which is free only after
        phase 2.
        """
        frame = self.frame
        reg_moves: list[tuple[int, int]] = []
        freg_moves: list[tuple[int, int]] = []
        stack_loads: list[tuple[str, int, object]] = []
        # Phase 1: spill-home register params; gather the rest.
        for kind, src, param in moves:
            if param not in self.assignment.locations:
                continue  # unused parameter
            location = self.loc(param)
            if kind in ("stack", "fstack"):
                stack_loads.append((kind, src, location))
            elif kind == "reg":
                if location.kind == "reg":
                    reg_moves.append((location.index, src))
                else:
                    self.finish_dest(location, src)
            elif kind == "freg":
                if location.kind == "freg":
                    freg_moves.append((location.index, src))
                else:
                    self.finish_dest(location, src)
        # Phase 2: register permutation with cycle breaking.
        self._move_graph(reg_moves, "int")
        self._move_graph(freg_moves, "fp")
        # Phase 3: stack-passed params (argument registers now free).
        for kind, src, location in stack_loads:
            if kind == "stack":
                reg = location.index if location.kind == "reg" else SCRATCH[0]
                self.emit("lw", rd=reg, rs=REG_SP, imm=frame.size + src * 8)
                self.finish_dest(location, reg)
            else:
                freg = location.index if location.kind == "freg" else FSCRATCH[0]
                self.emit("lfd", fd=freg, rs=REG_SP, imm=frame.size + src * 8)
                self.finish_dest(location, freg)

    def _epilogue(self) -> None:
        frame = self.frame
        offset = frame.save_base
        for reg in self.assignment.used_callee_saved:
            self.emit("lw", rd=reg, rs=REG_SP, imm=offset)
            offset += 4
        offset = align_up(offset, 8)
        for freg in self.assignment.used_callee_saved_fp:
            self.emit("lfd", fd=freg, rs=REG_SP, imm=offset)
            offset += 8
        self.emit("lw", rd=REG_RA, rs=REG_SP, imm=frame.ra_offset)
        if frame.size:
            self.emit("addi", rd=REG_SP, rs=REG_SP, imm=frame.size)
        self.emit("jr", rs=REG_RA)

    # -- instruction selection ---------------------------------------------------

    def _emit_instr(self, instr: Instr) -> None:
        op = instr.op
        if op == "copy":
            self._emit_copy(instr)
        elif op == "bin":
            self._emit_bin(instr)
        elif op == "cmp":
            self._emit_cmp(instr)
        elif op == "cast":
            self._emit_cast(instr)
        elif op == "load":
            self._emit_load(instr)
        elif op == "store":
            self._emit_store(instr)
        elif op == "frameaddr":
            reg, location = self.int_dest(instr.dest)
            offset = self.frame.slot_base[instr.slot]
            self.emit("addi", rd=reg, rs=REG_SP, imm=offset)
            self.finish_dest(location, reg)
        elif op in ("call", "icall", "hostcall"):
            self._emit_call(instr)
        elif op == "sethnd":
            reg = self.int_value(instr.args[0], 0)
            self.emit("sethnd", rs=reg)
        else:  # pragma: no cover
            raise CompileError(f"cannot select {instr}")

    def _emit_copy(self, instr: Instr) -> None:
        dest = instr.dest
        source = instr.args[0]
        if dest.ty in ("f32", "f64"):
            freg, location = self.fp_dest(dest)
            src = self.fp_value(source, 1)
            if location.kind == "freg" and src == freg:
                pass
            else:
                self.emit("fmovd" if dest.ty == "f64" else "fmovs",
                          fd=freg, fs=src)
            self.finish_dest(location, freg)
            return
        reg, location = self.int_dest(dest)
        if isinstance(source, Const):
            self.emit("li", rd=reg, imm=u32(int(source.value)))
        elif isinstance(source, GlobalRef):
            self.emit("li", rd=reg, label=source.name)
        else:
            src = self.int_value(source, 1)
            if not (location.kind == "reg" and src == reg):
                self.emit("mov", rd=reg, rs=src)
        self.finish_dest(location, reg)

    def _emit_bin(self, instr: Instr) -> None:
        ty = instr.dest.ty
        if ty in ("f32", "f64"):
            freg, location = self.fp_dest(instr.dest)
            a = self.fp_value(instr.args[0], 0)
            b = self.fp_value(instr.args[1], 1)
            base = _FALU.get(instr.subop)
            if base is None:
                raise CompileError(f"FP op {instr.subop!r} unsupported")
            suffix = "s" if ty == "f32" else "d"
            self.emit(base + suffix, fd=freg, fs=a, ft=b)
            self.finish_dest(location, freg)
            return
        reg, location = self.int_dest(instr.dest)
        subop = instr.subop
        a_op, b_op = instr.args
        signed = ir.is_signed(ty)
        if subop in ("div", "rem"):
            a = self.int_value(a_op, 0)
            b = self.int_value(b_op, 1)
            name = {"div": "div" if signed else "divu",
                    "rem": "rem" if signed else "remu"}[subop]
            self.emit(name, rd=reg, rs=a, rt=b)
        elif subop == "shr":
            a = self.int_value(a_op, 0)
            if isinstance(b_op, Const):
                self.emit("srai" if signed else "srli", rd=reg, rs=a,
                          imm=int(b_op.value) & 31)
            else:
                b = self.int_value(b_op, 1)
                self.emit("sra" if signed else "srl", rd=reg, rs=a, rt=b)
        elif subop == "sub" and isinstance(b_op, Const):
            a = self.int_value(a_op, 0)
            self.emit("addi", rd=reg, rs=a, imm=s32(-int(b_op.value)))
        elif isinstance(b_op, Const) and subop in _BIN_RI:
            a = self.int_value(a_op, 0)
            imm = int(b_op.value) & 31 if subop == "shl" else u32(int(b_op.value))
            self.emit(_BIN_RI[subop], rd=reg, rs=a, imm=imm)
        else:
            a = self.int_value(a_op, 0)
            b = self.int_value(b_op, 1)
            self.emit(_BIN_RR[subop], rd=reg, rs=a, rt=b)
        self.finish_dest(location, reg)

    def _emit_cmp(self, instr: Instr) -> None:
        reg, location = self.int_dest(instr.dest)
        cmp_ty = instr.cmp_ty
        if cmp_ty in ("f32", "f64"):
            self._emit_fp_compare_to_reg(instr, reg)
        else:
            signed = ir.is_signed(cmp_ty)
            a_op, b_op = instr.args
            if isinstance(b_op, Const):
                a = self.int_value(a_op, 0)
                name = _CMP_SET[(instr.subop, signed)] + "i"
                self.emit(name, rd=reg, rs=a, imm=u32(int(b_op.value)))
            else:
                a = self.int_value(a_op, 0)
                b = self.int_value(b_op, 1)
                self.emit(_CMP_SET[(instr.subop, signed)], rd=reg, rs=a, rt=b)
        self.finish_dest(location, reg)

    def _emit_fp_compare_to_reg(self, instr: Instr, reg: int) -> None:
        suffix = "s" if instr.cmp_ty == "f32" else "d"
        a = self.fp_value(instr.args[0], 0)
        b = self.fp_value(instr.args[1], 1)
        pred = instr.subop
        negate = False
        if pred == "ne":
            pred, negate = "eq", True
        if pred in ("gt", "ge"):
            a, b = b, a
            pred = {"gt": "lt", "ge": "le"}[pred]
        name = {"eq": "fceq", "lt": "fclt", "le": "fcle"}[pred] + suffix
        self.emit(name, rd=reg, fs=a, ft=b)
        if negate:
            self.emit("xori", rd=reg, rs=reg, imm=1)

    def _emit_cast(self, instr: Instr) -> None:
        subop = instr.subop
        dest = instr.dest
        source = instr.args[0]
        if subop == "bitcast":
            self._emit_copy(Instr("copy", dest, [source]))
            return
        if subop in ("sext8", "sext16", "zext8", "zext16"):
            reg, location = self.int_dest(dest)
            a = self.int_value(source, 0)
            self.emit(subop, rd=reg, rs=a)
            self.finish_dest(location, reg)
            return
        if subop in ("i2f", "u2f"):
            freg, location = self.fp_dest(dest)
            a = self.int_value(source, 0)
            single = dest.ty == "f32"
            name = {("i2f", False): "cvtdw", ("i2f", True): "cvtsw",
                    ("u2f", False): "cvtdwu", ("u2f", True): "cvtswu"}[
                        (subop, single)]
            self.emit(name, fd=freg, rs=a)
            self.finish_dest(location, freg)
            return
        if subop == "f2i":
            reg, location = self.int_dest(dest)
            a = self.fp_value(source, 0)
            single = source.ty == "f32"
            if dest.ty == "u32":
                name = "cvtwus" if single else "cvtwud"
            else:
                name = "cvtws" if single else "cvtwd"
            self.emit(name, rd=reg, fs=a)
            self.finish_dest(location, reg)
            return
        if subop in ("fext", "ftrunc"):
            freg, location = self.fp_dest(dest)
            a = self.fp_value(source, 0)
            self.emit("cvtds" if subop == "fext" else "cvtsd", fd=freg, fs=a)
            self.finish_dest(location, freg)
            return
        raise CompileError(f"unknown cast {subop!r}")  # pragma: no cover

    # -- memory -------------------------------------------------------------------

    def _emit_load(self, instr: Instr) -> None:
        base, index, offset = address_operands(instr)
        mem_ty = instr.mem_ty
        is_fp = mem_ty in ("f32", "f64")
        if is_fp:
            reg, location = self.fp_dest(instr.dest)
        else:
            reg, location = self.int_dest(instr.dest)
        if index is not None:
            base_reg = self.int_value(base, 0)
            index_reg = self.int_value(index, 1)
            name = _LOADX_OP[mem_ty]
            if is_fp:
                self.emit(name, fd=reg, rs=base_reg, rt=index_reg)
            else:
                self.emit(name, rd=reg, rs=base_reg, rt=index_reg)
        else:
            base_reg, load_offset = self._base_with_offset(base, offset)
            name = _LOAD_OP[mem_ty]
            if is_fp:
                self.emit(name, fd=reg, rs=base_reg, imm=load_offset)
            else:
                self.emit(name, rd=reg, rs=base_reg, imm=load_offset)
        if not is_fp and mem_ty in ("i8", "i16"):
            pass  # lb/lh sign-extend in the VM; nothing extra needed
        self.finish_dest(location, reg)

    def _base_with_offset(self, base: Operand, offset: int) -> tuple[int, int]:
        """Return (base register, immediate offset) for a memory access."""
        if isinstance(base, GlobalRef):
            reg = SCRATCH[0]
            self.emit("li", rd=reg, label=base.name)
            return reg, offset
        return self.int_value(base, 0), offset

    def _emit_store(self, instr: Instr) -> None:
        base, index, offset = address_operands(instr)
        value = instr.args[-1]
        mem_ty = instr.mem_ty
        if mem_ty in ("f32", "f64"):
            value_reg = self.fp_value(value, 0)
            if index is not None:
                base_reg = self.int_value(base, 0)
                index_reg = self.int_value(index, 1)
                self.emit(_STOREX_OP[mem_ty], ft=value_reg, rs=base_reg,
                          rd=index_reg)
            else:
                base_reg, store_offset = self._base_with_offset(base, offset)
                self.emit(_STORE_OP[mem_ty], ft=value_reg, rs=base_reg,
                          imm=store_offset)
            return
        if index is not None:
            in_reg = (
                isinstance(index, Temp) and self.loc(index).kind == "reg"
            )
            if in_reg:
                value_reg = self.int_value(value, 1)
                base_reg = self.int_value(base, 0)
                self.emit(_STOREX_OP[mem_ty], rt=value_reg, rs=base_reg,
                          rd=self.loc(index).index)
            else:
                # Index needs materialization: fold the address into r5
                # first so value can safely use r6 afterwards.
                index_reg = self.int_value(index, 0)
                if index_reg != SCRATCH[0]:
                    self.emit("mov", rd=SCRATCH[0], rs=index_reg)
                base_reg = self.int_value(base, 1)
                self.emit("add", rd=SCRATCH[0], rs=SCRATCH[0], rt=base_reg)
                value_reg = self.int_value(value, 1)
                self.emit(_STORE_OP[mem_ty], rt=value_reg, rs=SCRATCH[0],
                          imm=0)
        else:
            value_reg = self.int_value(value, 1)
            base_reg, store_offset = self._base_with_offset(base, offset)
            self.emit(_STORE_OP[mem_ty], rt=value_reg, rs=base_reg,
                      imm=store_offset)

    # -- calls ------------------------------------------------------------------

    def _emit_call(self, instr: Instr) -> None:
        args = list(instr.args)
        target: Operand | None = None
        if instr.op == "icall":
            target = args.pop(0)
        int_index, fp_index, stack_arg = 0, 0, 0
        # Stage 1: push stack args and gather register moves.
        reg_moves: list[tuple[int, Operand]] = []
        fp_moves: list[tuple[int, Operand]] = []
        for arg in args:
            if isinstance(arg, Temp) and arg.ty in ("f32", "f64") or (
                isinstance(arg, Const) and arg.ty in ("f32", "f64")
            ):
                if fp_index < len(FREG_ARGS):
                    fp_moves.append((FREG_ARGS[fp_index], arg))
                    fp_index += 1
                else:
                    freg = self.fp_value(arg, 0)
                    self.emit("sfd", ft=freg, rs=REG_SP, imm=stack_arg * 8)
                    stack_arg += 1
            else:
                if int_index < len(REG_ARGS):
                    reg_moves.append((REG_ARGS[int_index], arg))
                    int_index += 1
                else:
                    reg = self.int_value(arg, 0)
                    self.emit("sw", rt=reg, rs=REG_SP, imm=stack_arg * 8)
                    stack_arg += 1
        # Stage 2: indirect-call target into a scratch register *before*
        # argument registers are overwritten (it may live in r1..r4).
        target_reg = None
        if target is not None:
            target_reg = self.int_value(target, 0)
            if target_reg != SCRATCH[0]:
                self.emit("mov", rd=SCRATCH[0], rs=target_reg)
                target_reg = SCRATCH[0]
        # Stage 3: parallel-move arguments into ABI registers.  Sources
        # that are themselves argument registers are read before being
        # written because we process moves in a dependency-safe order.
        self._parallel_int_moves(reg_moves)
        self._parallel_fp_moves(fp_moves)
        # Stage 4: the transfer.
        if instr.op == "call":
            self.emit("jal", label=instr.name)
        elif instr.op == "icall":
            self.emit("jalr", rs=target_reg)
        else:
            from repro.runtime import hostapi

            spec = hostapi.HOST_FUNCTIONS.get(instr.name)
            if spec is None:
                raise CompileError(f"unknown host function {instr.name!r}")
            self.emit("hostcall", imm=spec.index)
        # Stage 5: result.
        dest = instr.dest
        if dest is not None:
            if dest.ty in ("f32", "f64"):
                freg, location = self.fp_dest(dest)
                if not (location.kind == "freg" and freg == 1):
                    self.emit("fmovd", fd=freg, fs=1)
                self.finish_dest(location, freg)
            else:
                reg, location = self.int_dest(dest)
                if not (location.kind == "reg" and reg == 1):
                    self.emit("mov", rd=reg, rs=1)
                self.finish_dest(location, reg)

    def _parallel_int_moves(self, moves: list[tuple[int, Operand]]) -> None:
        """Move values into integer argument registers.

        Register-resident sources go through the cycle-safe move graph;
        constants, global addresses and spill reloads cannot clobber any
        argument register and are emitted afterwards.
        """
        reg_moves: list[tuple[int, int]] = []
        others: list[tuple[int, Operand]] = []
        for dest, source in moves:
            if isinstance(source, Temp) and self.loc(source).kind == "reg":
                reg_moves.append((dest, self.loc(source).index))
            else:
                others.append((dest, source))
        self._move_graph(reg_moves, "int")
        for dest, source in others:
            if isinstance(source, Const):
                self.emit("li", rd=dest, imm=u32(int(source.value)))
            elif isinstance(source, GlobalRef):
                self.emit("li", rd=dest, label=source.name)
            else:
                location = self.loc(source)
                self.emit("lw", rd=dest, rs=REG_SP,
                          imm=self.frame.spill_base + location.index * 4)

    def _parallel_fp_moves(self, moves: list[tuple[int, Operand]]) -> None:
        reg_moves: list[tuple[int, int]] = []
        others: list[tuple[int, Operand]] = []
        for dest, source in moves:
            if isinstance(source, Temp) and self.loc(source).kind == "freg":
                reg_moves.append((dest, self.loc(source).index))
            else:
                others.append((dest, source))
        self._move_graph(reg_moves, "fp")
        for dest, source in others:
            if isinstance(source, Const):
                # Materialize through the pool; the address register is
                # r6 (r5 may hold an indirect-call target).
                name = self.obj_float_pool(float(source.value), source.ty)
                self.emit("li", rd=SCRATCH[1], label=name)
                self.emit("lfs" if source.ty == "f32" else "lfd",
                          fd=dest, rs=SCRATCH[1], imm=0)
            else:
                location = self.loc(source)
                self.emit("lfd", fd=dest, rs=REG_SP,
                          imm=self.frame.fspill_base + location.index * 8)

    # -- terminators ----------------------------------------------------------------

    def _emit_terminator(self, term: Instr, next_label: str | None) -> None:
        if term.op == "ret":
            if term.args:
                value = term.args[0]
                if value.ty in ("f32", "f64") if isinstance(value, Temp) else (
                    isinstance(value, Const) and value.ty in ("f32", "f64")
                ):
                    freg = self.fp_value(value, 0)
                    if freg != 1:
                        self.emit("fmovd", fd=1, fs=freg)
                else:
                    if isinstance(value, Const):
                        self.emit("li", rd=1, imm=u32(int(value.value)))
                    elif isinstance(value, GlobalRef):
                        self.emit("li", rd=1, label=value.name)
                    else:
                        reg = self.int_value(value, 0)
                        if reg != 1:
                            self.emit("mov", rd=1, rs=reg)
            self._epilogue()
            return
        if term.op == "jump":
            if term.targets[0] != next_label:
                self.emit("j", label=self.local_label(term.targets[0]))
            return
        if term.op == "br":
            self._emit_branch(term, next_label)
            return
        raise CompileError(f"bad terminator {term.op!r}")  # pragma: no cover

    def _emit_branch(self, term: Instr, next_label: str | None) -> None:
        taken, fallthrough = term.targets
        pred = term.subop
        cmp_ty = term.cmp_ty
        # Prefer to branch on the condition whose target is NOT the next
        # block, so the common path falls through.
        if taken == next_label:
            pred = ir.NEGATED_PRED[pred]
            taken, fallthrough = fallthrough, taken
        if cmp_ty in ("f32", "f64"):
            reg = SCRATCH[0]
            helper = Instr("cmp", Temp(-1, "i32"), list(term.args),
                           subop=pred, cmp_ty=cmp_ty)
            self._emit_fp_compare_to_reg(helper, reg)
            self.emit("bnei", rs=reg, imm2=0, label=self.local_label(taken))
        else:
            signed = ir.is_signed(cmp_ty)
            a_op, b_op = term.args
            if isinstance(a_op, Const) and not isinstance(b_op, Const):
                a_op, b_op = b_op, a_op
                pred = ir.SWAPPED_PRED[pred]
            if isinstance(b_op, Const) and _IMM2_MIN <= s32(int(b_op.value)) <= _IMM2_MAX:
                a = self.int_value(a_op, 0)
                name = _BRANCH[(pred, signed)] + "i"
                self.emit(name, rs=a, imm2=s32(int(b_op.value)),
                          label=self.local_label(taken))
            else:
                a = self.int_value(a_op, 0)
                b = self.int_value(b_op, 1)
                self.emit(_BRANCH[(pred, signed)], rs=a, rt=b,
                          label=self.local_label(taken))
        if fallthrough != next_label:
            self.emit("j", label=self.local_label(fallthrough))


def generate_object(
    module: Module,
    regfile: RegisterFile | None = None,
    num_regs: int = 16,
) -> ObjectModule:
    """Generate an OmniVM object module from an IR module."""
    regfile = regfile or omnivm_register_file(num_regs)
    obj = ObjectModule(module.name)
    with metrics.stage("codegen"):
        _emit_globals(module, obj)
        for index, func in enumerate(module.functions):
            emitter = FunctionEmitter(func, obj, regfile, index)
            emitter.run()
    obj.declare_imports()
    if metrics.active():
        metrics.count("codegen.omni_instrs", len(obj.text))
    return obj


def _emit_globals(module: Module, obj: ObjectModule) -> None:
    data = bytearray(obj.data)
    for glob in module.globals:
        offset = align_up(len(data), max(glob.align, 1))
        data.extend(b"\x00" * (offset - len(data)))
        image = glob.image + b"\x00" * (glob.size - len(glob.image))
        data.extend(image)
        obj.define(glob.name, "data", offset, is_global=not glob.name.startswith("."))
        for reloc_offset, symbol in glob.relocs:
            obj.data_relocs.append(DataReloc(offset + reloc_offset, symbol))
    obj.data = bytes(data)
