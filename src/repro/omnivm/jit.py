"""Trace-based superblock JIT tier for OmniVM.

The threaded engine (:mod:`repro.omnivm.threaded`) predecodes every
instruction into a bound closure and batches straight-line runs into
basic blocks, but each dynamic instruction still costs at least one
Python call.  This module adds the third tier the ROADMAP names: when a
block entry crosses a heat threshold, the hot chain is stitched across
likely-taken branches into a **superblock** — one entry, many exits —
and the whole superblock is compiled to a *single* generated Python
function via source generation + ``compile()``/``exec``.  Register
indexes, immediates, guard constants and fault pcs are folded into the
emitted source as literals, so a hot loop iteration executes as one
Python frame with no per-instruction dispatch at all.

Tiering contract (the deopt contract):

* superblocks are entered only at their entry pc; every **side exit**
  (mispredicted guard, indirect jump, return, host halt, trace limit)
  commits exact architectural state — ``state.pc`` and
  ``state.instret`` — before returning to the threaded tier, which
  resumes as if it had executed every instruction itself;
* faults inside a superblock (access violations, division traps,
  ``trap``) commit the exact retired prefix and annotate ``fault_pc``
  with the faulting instruction's pc, byte-identical to the threaded
  engine's block fault accounting;
* loop-shaped superblocks close back on their entry and check fuel at
  the backedge, so block-level fuel cuts (including the service
  watchdog's asynchronous ``fuel = -1``) still land promptly.  Fuel
  granularity is the one documented relaxation, as for the threaded
  tier: :class:`~repro.errors.FuelExhausted` lands at the next
  superblock boundary rather than the next basic block.

Trace formation is static and deterministic.  A conditional branch is
resolved three ways, in priority order: an edge back to the trace entry
is predicted toward the entry so loops close regardless of layout (the
front end lays loop tests *below* their bodies, so backedges are often
forward taken branches); a short forward branch over straight-line code
— an ``if``/``then`` or ``if``/``then``/``else`` diamond — has **both
arms inlined** with no side exit at all; anything else falls back to
backward-taken/forward-not-taken with a guarded side exit.  Because the
two arms of a diamond retire different instruction counts, a trace
containing one switches from compile-time-constant instret offsets to a
runtime retired counter ``_n``, synced once per arm at each join.  The
emitted source for a given program remains a pure function of the
instruction stream — two predecode runs of the same program produce
byte-identical superblock source (pinned by tests; no ``id()`` or
hash/dict iteration order may leak into the emitted code).

Compiled superblocks bind no VM state (they receive the register files
and memory as arguments), so — like the predecode artifact — they are
shared between VM instances via the in-memory predecode side table of
:class:`~repro.cache.TranslationCache` under ``("jit-omni", digest,
entry)`` keys, which module revocation invalidates together with the
``("predecode-*", ...)`` entries.
"""

from __future__ import annotations

import time

from repro import metrics
from repro.errors import (
    AccessViolation,
    FuelExhausted,
    VMRuntimeError,
)
from repro.jitcore import (
    CMP as _CMP,
    CMP_INV as _CMP_INV,
    FLUSH as _FLUSH,
    JIT_HEAT,
    MAX_TRACE_BLOCKS,
    MAX_TRACE_INSTRS,
    Acct as _Acct,
    Emitter as _Emitter,
    SideExitPromotion,
    base_exec_globals,
    emit_cvt as _emit_cvt,
    emit_ext as _emit_ext,
    emit_load_refill as _emit_load_refill,
    emit_s32 as _emit_s32,
    emit_store_refill as _emit_store_refill,
)
from repro.omnivm import semantics
from repro.omnivm.interp import _IMM_TO_REG_OP, _LOAD_SHAPE, _STORE_SIZE, OmniVM
from repro.omnivm.isa import BRANCH_PREDS, INSTR_SIZE, REG_RA, SET_PREDS
from repro.omnivm.memory import CODE_BASE
from repro.omnivm.threaded import _TERM_KINDS, ThreadedVM
from repro.utils.bits import s32, u32

_M = 0xFFFFFFFF
_SIGN = 0x80000000

#: Longest arm (in instructions) an inlined branch diamond may have.
MAX_DIAMOND_ARM = 8

__all__ = [
    "JIT_HEAT",
    "JitVM",
    "compile_superblock",
    "superblock_source",
]

#: Names the generated source may reference; a fresh copy becomes the
#: module namespace of each exec'd superblock (shared with the native
#: JIT — see :func:`repro.jitcore.base_exec_globals`).
_EXEC_GLOBALS = base_exec_globals()

#: FP ops that can raise the (unattributed) arithmetic trap.
_FP_TRAPPING = ("fadd", "fsub", "fmul", "fdiv")


def _emit_commit(em, acct, offset, pc, depth=0):
    em.emit(f"state.instret += {acct.expr(offset)}", depth)
    em.emit(f"state.pc = {pc:#x}", depth)


# ---------------------------------------------------------------------------
# straight-line instruction emission
# ---------------------------------------------------------------------------

def _emit_alu(em, op, rd, rs, rt, const):
    """Reg-reg (``const is None``) or folded-immediate ALU emission,
    mirroring :func:`repro.omnivm.threaded._compile_alu` exactly.

    Signed set-compares use the bias trick — ``(a ^ 0x80000000)``
    compares unsigned exactly as ``a`` compares signed — so no
    sign-extension statements are needed.
    """
    if op in SET_PREDS:
        pred, signed = SET_PREDS[op]
        cmp = _CMP[pred]
        if pred in ("eq", "ne") or not signed:
            b = f"regs[{rt}]" if const is None else str(const)
            em.emit(f"regs[{rd}] = 1 if regs[{rs}] {cmp} {b} else 0")
        else:
            b = (f"(regs[{rt}] ^ {_SIGN:#x})" if const is None
                 else str(const ^ _SIGN))
            em.emit(f"regs[{rd}] = 1 if (regs[{rs}] ^ {_SIGN:#x}) "
                    f"{cmp} {b} else 0")
        return
    b = f"regs[{rt}]" if const is None else str(const)
    if op == "add":
        em.emit(f"regs[{rd}] = (regs[{rs}] + {b}) & {_M:#x}")
    elif op == "sub":
        em.emit(f"regs[{rd}] = (regs[{rs}] - {b}) & {_M:#x}")
    elif op == "mul":
        em.emit(f"regs[{rd}] = (regs[{rs}] * {b}) & {_M:#x}")
    elif op == "and":
        em.emit(f"regs[{rd}] = regs[{rs}] & {b}")
    elif op == "or":
        em.emit(f"regs[{rd}] = regs[{rs}] | {b}")
    elif op == "xor":
        em.emit(f"regs[{rd}] = regs[{rs}] ^ {b}")
    elif op in ("sll", "srl", "sra"):
        sh = f"(regs[{rt}] & 31)" if const is None else str(const & 31)
        if op == "sll":
            em.emit(f"regs[{rd}] = (regs[{rs}] << {sh}) & {_M:#x}")
        elif op == "srl":
            em.emit(f"regs[{rd}] = regs[{rs}] >> {sh}")
        else:
            _emit_s32(em, "_a", rs)
            em.emit(f"regs[{rd}] = (_a >> {sh}) & {_M:#x}")
    else:  # pragma: no cover - spec table guarantees coverage
        raise VMRuntimeError(f"unknown ALU op {op!r}")


def _emit_mem_guard(em, acct, pc, offset, depth=0):
    """The access-violation wrapper every slow-path access carries."""
    em.emit("except AccessViolation as violation:", depth)
    em.emit(f"violation.fault_pc = {pc:#x}", depth + 1)
    _emit_commit(em, acct, offset, pc, depth + 1)
    em.emit("raise", depth + 1)


def _mem_addr(rs, other, immu, indexed):
    base = f"regs[{rs}] + regs[{other}]" if indexed else f"regs[{rs}] + {immu}"
    return f"({base}) & {_M:#x}"


# The generated code keeps a *per-site* inline cache for every static
# load and store in the trace: locals ``(_lb{s}, _ll{s}, _ld{s})`` for
# the segment a load site last hit and ``(_sb{s}, _sl{s}, _sd{s})`` for
# a store site — base, limit, and backing bytearray.  A hit costs two
# local-int compares and a struct access, no attribute lookups and no
# calls.  A miss takes the Memory accessor (which raises the exact
# documented AccessViolation) and refills that site's cache from
# ``memory._last``, which every successful slow-path access leaves
# pointing at the serving segment with the permission just exercised.
# One shared cache thrashes as soon as a loop touches two segments
# (table in data, buffer on the heap); per-site caches miss once each
# and then hit for the rest of the loop.  Only a hostcall can change
# segment permissions mid-trace, so every site is flushed after each
# inlined hostcall (patched in at assembly time via ``_FLUSH`` so a
# hostcall early in a loop also drops sites emitted after it).
# (The cache emission helpers themselves live in repro.jitcore.)


def _emit_load_cached(em, acct, pc, offset, addr, size, fast_lines,
                      slow_stmt):
    sid = em.load_site()
    em.emit(f"_ad = {addr}")
    if size == 1:
        em.emit(f"if _lb{sid} <= _ad < _ll{sid}:")
    else:
        em.emit(f"if _lb{sid} <= _ad and _ad + {size} <= _ll{sid}:")
    for line in fast_lines:
        em.emit(line.format(s=sid), 1)
    em.emit("else:")
    em.emit("try:", 1)
    em.emit(slow_stmt, 2)
    _emit_mem_guard(em, acct, pc, offset, 1)
    _emit_load_refill(em, sid, 1)


def _emit_load(em, acct, instr, pc, offset):
    indexed = instr.spec.kind == "loadx"
    size, signed = _LOAD_SHAPE[instr.op[:-1] if indexed else instr.op]
    addr = _mem_addr(instr.rs, instr.rt, u32(instr.imm), indexed)
    rd = instr.rd
    if size == 4:
        fast = [f"regs[{rd}] = u32_at(_ld{{s}}, _ad - _lb{{s}})[0]"]
        slow = f"regs[{rd}] = memory.load_u32(_ad)"
    else:
        slow = (f"regs[{rd}] = memory.load(_ad, {size}, {signed})"
                f" & {_M:#x}")
        if size == 1:
            if signed:
                fast = ["_v = _ld{s}[_ad - _lb{s}]",
                        f"regs[{rd}] = _v | 0xffffff00 if _v & 0x80 else _v"]
            else:
                fast = [f"regs[{rd}] = _ld{{s}}[_ad - _lb{{s}}]"]
        elif signed:
            fast = ["_v = u16_at(_ld{s}, _ad - _lb{s})[0]",
                    f"regs[{rd}] = _v | 0xffff0000 if _v & 0x8000 else _v"]
        else:
            fast = [f"regs[{rd}] = u16_at(_ld{{s}}, _ad - _lb{{s}})[0]"]
    _emit_load_cached(em, acct, pc, offset, addr, size, fast, slow)


def _emit_store(em, acct, instr, pc, offset):
    indexed = instr.spec.kind == "storex"
    size = _STORE_SIZE[instr.op[:-1] if indexed else instr.op]
    # Indexed stores use rd as the index register (see the ISA format).
    addr = _mem_addr(instr.rs, instr.rd, u32(instr.imm), indexed)
    rt = instr.rt
    sid = em.store_site()
    if size == 4:
        fast = f"put_u32(_sd{sid}, _ad - _sb{sid}, regs[{rt}])"
        slow = f"memory.store_u32(_ad, regs[{rt}])"
    else:
        slow = f"memory.store(_ad, {size}, regs[{rt}])"
        if size == 1:
            fast = f"_sd{sid}[_ad - _sb{sid}] = regs[{rt}] & 0xff"
        else:
            fast = f"put_u16(_sd{sid}, _ad - _sb{sid}, regs[{rt}] & 0xffff)"
    em.emit(f"_ad = {addr}")
    if size == 1:
        em.emit(f"if _sb{sid} <= _ad < _sl{sid}:")
    else:
        em.emit(f"if _sb{sid} <= _ad and _ad + {size} <= _sl{sid}:")
    em.emit(fast, 1)
    em.emit("memory.write_count += 1", 1)
    em.emit("else:")
    em.emit("try:", 1)
    em.emit(slow, 2)
    _emit_mem_guard(em, acct, pc, offset, 1)
    _emit_store_refill(em, sid, 1)


def _emit_fmem(em, acct, instr, pc, offset):
    kind = instr.spec.kind
    indexed = kind in ("floadx", "fstorex")
    single = instr.op.startswith(("lfs", "sfs"))
    width = "f32" if single else "f64"
    size = 4 if single else 8
    if kind in ("fload", "floadx"):
        addr = _mem_addr(instr.rs, instr.rt, u32(instr.imm), indexed)
        fast = [f"fregs[{instr.fd}] = {width}_at(_ld{{s}}, "
                f"_ad - _lb{{s}})[0]"]
        slow = f"fregs[{instr.fd}] = memory.load_{width}(_ad)"
        _emit_load_cached(em, acct, pc, offset, addr, size, fast, slow)
        return
    # fstore / fstorex: the index register is rd.
    addr = _mem_addr(instr.rs, instr.rd, u32(instr.imm), indexed)
    if single:
        # f32 stores round the double operand (overflowing to signed
        # infinity) before reinterpreting — keep the accessor call.
        em.emit("try:")
        em.emit(f"    memory.store_f32({addr}, fregs[{instr.ft}])")
        _emit_mem_guard(em, acct, pc, offset)
        return
    sid = em.store_site()
    em.emit(f"_ad = {addr}")
    em.emit(f"if _sb{sid} <= _ad and _ad + 8 <= _sl{sid}:")
    em.emit(f"put_f64(_sd{sid}, _ad - _sb{sid}, fregs[{instr.ft}])", 1)
    # store_f64 issues two word stores; mirror its write accounting.
    em.emit("memory.write_count += 2", 1)
    em.emit("else:")
    em.emit("try:", 1)
    em.emit(f"memory.store_f64(_ad, fregs[{instr.ft}])", 2)
    _emit_mem_guard(em, acct, pc, offset, 1)
    _emit_store_refill(em, sid, 1)


def _emit_falu(em, acct, instr, nb, block_pc):
    op = instr.op
    base = op[:-1]
    single = op in ("fadds", "fsubs", "fmuls", "fdivs",
                    "fnegs", "fabss", "fmovs")
    if op in ("fmovs", "fmovd", "fnegs", "fnegd", "fabss", "fabsd"):
        expr = {"fmov": f"fregs[{instr.fs}]",
                "fneg": f"-fregs[{instr.fs}]",
                "fabs": f"abs(fregs[{instr.fs}])"}[base]
        if single:
            expr = f"round_f32({expr})"
        em.emit(f"fregs[{instr.fd}] = {expr}")
        return
    # Inline the arithmetic: CPython float +,-,*,/ overflow to inf
    # without raising, so only fdiv's explicit zero check can trap.
    # FP traps are unattributed in the threaded tier: instret stays at
    # the previous block boundary and pc at the block entry.
    fs, ft = instr.fs, instr.ft
    if base == "fdiv":
        em.emit(f"if fregs[{ft}] == 0.0:")
        _emit_commit(em, acct, nb, block_pc, 1)
        em.emit(f"    raise VMRuntimeError({semantics.FP_DIV_ZERO_MSG!r})")
        expr = f"fregs[{fs}] / fregs[{ft}]"
    else:
        sym = {"fadd": "+", "fsub": "-", "fmul": "*"}[base]
        expr = f"fregs[{fs}] {sym} fregs[{ft}]"
    if single:
        expr = f"round_f32({expr})"
    em.emit(f"fregs[{instr.fd}] = {expr}")


def _emit_body_instr(em, acct, instr, pc, offset, nb, block_pc):
    """Emit one straight-line instruction.

    ``offset`` counts instructions retired *through this one* since the
    accounting base point; ``nb``/``block_pc`` identify the enclosing
    threaded basic block for unattributed-trap accounting.
    """
    op = instr.op
    kind = instr.spec.kind
    if kind == "alu":
        if op in ("div", "divu", "rem", "remu"):
            em.emit("try:")
            em.emit(f"    regs[{instr.rd}] = int_divide({op!r}, "
                    f"regs[{instr.rs}], regs[{instr.rt}])")
            em.emit("except VMRuntimeError as err:")
            em.emit(f"    err.fault_pc = {pc:#x}")
            _emit_commit(em, acct, offset, pc, 1)
            em.emit("    raise")
        else:
            _emit_alu(em, op, instr.rd, instr.rs, instr.rt, None)
    elif kind == "alui":
        _emit_alu(em, _IMM_TO_REG_OP[op], instr.rd, instr.rs, None,
                  u32(instr.imm))
    elif kind == "li":
        em.emit(f"regs[{instr.rd}] = {u32(instr.imm)}")
    elif kind == "mov":
        em.emit(f"regs[{instr.rd}] = regs[{instr.rs}]")
    elif kind in ("load", "loadx"):
        _emit_load(em, acct, instr, pc, offset)
    elif kind in ("store", "storex"):
        _emit_store(em, acct, instr, pc, offset)
    elif kind in ("fload", "floadx", "fstore", "fstorex"):
        _emit_fmem(em, acct, instr, pc, offset)
    elif kind == "falu":
        _emit_falu(em, acct, instr, nb, block_pc)
    elif kind == "fcmp":
        cmp = _CMP[{"fceq": "eq", "fclt": "lt", "fcle": "le"}[op[:-1]]]
        em.emit(f"regs[{instr.rd}] = 1 if fregs[{instr.fs}] {cmp} "
                f"fregs[{instr.ft}] else 0")
    elif kind == "cvt":
        _emit_cvt(em, instr)
    elif kind == "ext":
        _emit_ext(em, instr)
    elif op == "nop":
        pass
    else:  # pragma: no cover - verifier rejects unknown opcodes
        raise VMRuntimeError(f"unimplemented opcode {op!r}")


# ---------------------------------------------------------------------------
# conditional branches: folds, inlined diamonds, guarded side exits
# ---------------------------------------------------------------------------

def _emit_side_exit(em, acct, offset, pc, depth=0, deopt=None):
    if deopt:
        # A guarded deopt notifies the promotion policy (which also
        # counts it) so hot side exits can be re-formed; *deopt* is the
        # pre-built ``vm._note_exit(...)`` statement.
        em.emit(deopt, depth)
    _emit_commit(em, acct, offset, pc, depth)
    em.emit("return", depth)


def _fold_branchi(instr):
    """Mirror (and extend) the threaded engine's constant folding for
    compare-immediate branches whose constant is outside the operand
    domain.  Returns ``True``/``False`` for an always/never-taken
    branch, ``None`` when the outcome is data-dependent."""
    if instr.spec.kind != "branchi":
        return None
    pred, signed = BRANCH_PREDS[instr.op[:-1]]
    b = instr.imm2 if signed else u32(instr.imm2)
    lo, hi = (-(1 << 31), 1 << 31) if signed else (0, 1 << 32)
    if lo <= b < hi:
        return None
    if pred == "eq":
        return False
    if pred == "ne":
        return True
    # Ordered compare against an out-of-domain constant: every operand
    # value is on the same side of it.
    if b >= hi:
        return pred in ("lt", "le")
    return pred in ("gt", "ge")


def _branch_terms(instr):
    """Operand strings for a conditional branch's predicate.  Signed
    compares use the bias trick (``x ^ 0x80000000`` orders unsigned as
    ``x`` orders signed), so no sign-extension statements are needed.
    Returns ``(pred, lhs, rhs)``."""
    rs = instr.rs
    if instr.spec.kind == "branch":
        pred, signed = BRANCH_PREDS[instr.op]
        if pred in ("eq", "ne") or not signed:
            return pred, f"regs[{rs}]", f"regs[{instr.rt}]"
        return (pred, f"(regs[{rs}] ^ {_SIGN:#x})",
                f"(regs[{instr.rt}] ^ {_SIGN:#x})")
    pred, signed = BRANCH_PREDS[instr.op[:-1]]
    b = instr.imm2 if signed else u32(instr.imm2)
    if pred in ("eq", "ne"):
        return pred, f"regs[{rs}]", str(b & _M)
    if signed:
        return pred, f"(regs[{rs}] ^ {_SIGN:#x})", str(u32(b) ^ _SIGN)
    return pred, f"regs[{rs}]", str(b)


def _straight_line(instrs, start, stop):
    """True when ``instrs[start:stop]`` contains no terminator."""
    for k in range(start, stop):
        spec_kind = instrs[k].spec.kind
        if spec_kind in _TERM_KINDS or instrs[k].op in ("trap", "sethnd"):
            return False
    return True


def _join_blocks_fp_trap(instrs, n, join):
    """True when a trapping FP op appears between *join* and the next
    terminator.  Past a join the enclosing threaded block differs per
    arm, and FP traps are *block*-attributed, so such a region cannot
    share one emission for both arms."""
    k = join
    while k < n:
        instr = instrs[k]
        if instr.spec.kind in _TERM_KINDS or instr.op in ("trap", "sethnd"):
            return False
        if instr.spec.kind == "falu" and instr.op[:-1] in _FP_TRAPPING:
            return True
        k += 1
    return False


def _find_diamond(instrs, n, pc, target):
    """Recognise a short forward branch over straight-line code.

    Returns ``None`` or ``(join_index, fall_arm, taken_arm, jump)``
    where the arms are ``(start_index, stop_index)`` instruction ranges
    (the taken arm is empty for a plain if/then) and ``jump`` is True
    when the fall arm additionally retires a ``jump`` to the join.
    """
    fall = pc + INSTR_SIZE
    if target <= fall or (target - CODE_BASE) & 7:
        return None
    fall_i = (fall - CODE_BASE) >> 3
    t_i = (target - CODE_BASE) >> 3
    if t_i >= n or t_i - fall_i > MAX_DIAMOND_ARM:
        return None
    if _straight_line(instrs, fall_i, t_i):
        # if/then: the branch skips the arm.
        if _join_blocks_fp_trap(instrs, n, t_i):
            return None
        return t_i, (fall_i, t_i), (t_i, t_i), False
    # if/then/else: fall arm ends in a jump to the join; the taken arm
    # is laid out at the branch target and falls into the join.
    tail = instrs[t_i - 1]
    if tail.spec.kind != "jump" or not _straight_line(instrs, fall_i,
                                                      t_i - 1):
        return None
    join = u32(tail.imm)
    if join < target or (join - CODE_BASE) & 7:
        return None
    j_i = (join - CODE_BASE) >> 3
    if j_i >= n or j_i - t_i > MAX_DIAMOND_ARM:
        return None
    if not _straight_line(instrs, t_i, j_i):
        return None
    if _join_blocks_fp_trap(instrs, n, j_i):
        return None
    return j_i, (fall_i, t_i - 1), (t_i, j_i), True


def _emit_arm(em, acct, instrs, arm, offset, block_pc, depth):
    """Emit one diamond arm (its own threaded block, entered at
    *block_pc* with *offset* instructions retired)."""
    sub = _Emitter(em)
    start, stop = arm
    aoff = offset
    for k in range(start, stop):
        pc = CODE_BASE + k * INSTR_SIZE
        aoff += 1
        _emit_body_instr(sub, acct, instrs[k], pc, aoff, offset, block_pc)
    pad = "    " * depth
    em.lines.extend(pad + line for line in sub.lines)
    return aoff


def _emit_branch(em, acct, instrs, n, instr, pc, offset, entry_pc,
                 entry_index, overrides):
    """Emit a conditional branch and return ``(continuation_pc,
    new_offset, extra_instrs)``.

    *offset* counts retired instructions including this branch.  Most
    branches become a guarded side exit and leave the offset alone; an
    inlined diamond resets it to zero (the join becomes the new
    accounting base) and reports how many arm instructions it emitted.
    *overrides* maps branch pcs to promoted predictions (see
    :class:`repro.jitcore.SideExitPromotion`); they replace only the
    BTFN default — loop closure and diamonds keep priority.
    """
    target = u32(instr.imm)
    fall = pc + INSTR_SIZE
    folded = _fold_branchi(instr)
    if folded is not None:
        return (target if folded else fall), offset, 0
    pred, lhs, rhs = _branch_terms(instr)
    # Loop closure has priority: an edge back to the trace entry is a
    # backedge regardless of layout, so predict toward the entry.
    if target == entry_pc:
        predict_taken = True
    elif fall == entry_pc:
        predict_taken = False
    else:
        diamond = _find_diamond(instrs, n, pc, target)
        if diamond is not None:
            join_i, fall_arm, taken_arm, jump = diamond
            if fall_arm[0] == fall_arm[1] and taken_arm[0] == taken_arm[1] \
                    and not jump:
                # Branch to the next instruction: both paths agree.
                return target, offset, 0
            sync = "_n +=" if acct.runtime else "_n ="
            taken_len = taken_arm[1] - taken_arm[0]
            fall_len = fall_arm[1] - fall_arm[0] + (1 if jump else 0)
            em.emit(f"if {lhs} {_CMP[pred]} {rhs}:")
            _emit_arm(em, acct, instrs, taken_arm, offset, target, 1)
            em.emit(f"{sync} {offset + taken_len}", 1)
            em.emit("else:")
            _emit_arm(em, acct, instrs, fall_arm, offset, fall, 1)
            em.emit(f"{sync} {offset + fall_len}", 1)
            acct.runtime = True
            return (CODE_BASE + join_i * INSTR_SIZE, 0,
                    taken_len + fall_len)
        if pc in overrides:
            predict_taken = overrides[pc]
        else:
            predict_taken = target <= pc
    exit_pred = _CMP_INV[pred] if predict_taken else pred
    exit_pc = fall if predict_taken else target
    em.emit(f"if {lhs} {_CMP[exit_pred]} {rhs}:")
    _emit_side_exit(em, acct, offset, exit_pc, 1,
                    deopt=f"vm._note_exit({entry_index}, {pc:#x}, "
                          f"{not predict_taken}, {exit_pc:#x})")
    return (target if predict_taken else fall), offset, 0


# ---------------------------------------------------------------------------
# trace formation + source generation
# ---------------------------------------------------------------------------

def superblock_source(program, entry_index: int, overrides=None) -> str:
    """Form the superblock entered at *entry_index* and generate its
    Python source.  Deterministic: the output is a pure function of
    ``program.instrs``, the entry, and the (per-VM) prediction
    *overrides* (pinned by the determinism test).
    """
    overrides = overrides or {}
    instrs = program.instrs
    n = program.length
    em = _Emitter()
    acct = _Acct()
    entry_pc = CODE_BASE + entry_index * INSTR_SIZE
    end_pc = CODE_BASE + n * INSTR_SIZE

    visited: set[int] = set()
    index = entry_index
    off = 0    # instructions retired since the accounting base
    total = 0  # instructions emitted, for the header and trace limits
    looped = False
    open_trace = True
    while open_trace:
        if index in visited:
            if index == entry_index:
                looped = True
            else:
                pc = CODE_BASE + index * INSTR_SIZE
                em.emit(f"# rejoin @{pc:#010x}: exit to the threaded tier")
                _emit_side_exit(em, acct, off, pc)
            break
        if len(visited) >= MAX_TRACE_BLOCKS or total >= MAX_TRACE_INSTRS:
            pc = CODE_BASE + index * INSTR_SIZE
            em.emit(f"# trace limit @{pc:#010x}: exit to the threaded tier")
            _emit_side_exit(em, acct, off, pc)
            break
        visited.add(index)
        nb = off
        block_pc = CODE_BASE + index * INSTR_SIZE
        em.emit(f"# block @{block_pc:#010x}")
        # -- straight-line body ------------------------------------------
        i = index
        instr = None
        while i < n:
            instr = instrs[i]
            if instr.spec.kind in _TERM_KINDS or instr.op in ("trap",
                                                              "sethnd"):
                break
            pc = CODE_BASE + i * INSTR_SIZE
            off += 1
            total += 1
            _emit_body_instr(em, acct, instr, pc, off, nb, block_pc)
            i += 1
        else:
            # Fell off the end of the code segment: the threaded tier
            # resolves this as an execute fault at the end address.
            _emit_side_exit(em, acct, off, end_pc)
            break
        # -- terminator --------------------------------------------------
        pc = CODE_BASE + i * INSTR_SIZE
        kind = instr.spec.kind
        op = instr.op
        next_pc = pc + INSTR_SIZE
        off += 1
        total += 1
        if kind in ("branch", "branchi"):
            cont, off, extra = _emit_branch(em, acct, instrs, n, instr,
                                            pc, off, entry_pc,
                                            entry_index, overrides)
            total += extra
        elif kind == "jump":
            cont = u32(instr.imm)
        elif kind == "call":
            em.emit(f"regs[{REG_RA}] = {next_pc:#x}")
            cont = u32(instr.imm)
        elif kind in ("ijump", "icall"):
            if kind == "icall":
                em.emit(f"regs[{REG_RA}] = {next_pc:#x}")
            em.emit(f"state.instret += {acct.expr(off)}")
            em.emit(f"state.pc = regs[{instr.rs}]")
            em.emit("return")
            break
        elif kind == "host":
            em.emit("if vm.hostcall is None:")
            _emit_commit(em, acct, off, pc, 1)
            em.emit("    raise VMRuntimeError("
                    "'module made a hostcall but no host is attached')")
            em.emit("try:")
            em.emit(f"    vm.hostcall(vm, {instr.imm})")
            em.emit("except AccessViolation as violation:")
            em.emit("    _fp = getattr(violation, 'fault_pc', None)")
            em.emit("    if _fp is None:")
            em.emit(f"        _fp = {pc:#x}")
            em.emit("        violation.fault_pc = _fp", 0)
            em.emit(f"    state.instret += {acct.expr(off)}")
            em.emit("    state.pc = _fp")
            em.emit("    raise")
            # Host services may change segment permissions; drop every
            # inline-cache site (expanded at assembly time, once the
            # full site list is known — a loop can revisit sites that
            # are emitted after this hostcall).
            em.emit(_FLUSH)
            em.emit("if state.halted:")
            _emit_commit(em, acct, off, next_pc, 1)
            em.emit("    return")
            cont = next_pc
        elif op == "trap":
            _emit_commit(em, acct, off, pc)
            em.emit(f"raise VMTrap({f'module trap {instr.imm}'!r}, "
                    f"{instr.imm})")
            break
        else:  # sethnd
            em.emit(f"state.handler = regs[{instr.rs}]")
            cont = next_pc
        # -- continuation ------------------------------------------------
        offset = cont - CODE_BASE
        if offset & 7 or offset < 0 or (offset >> 3) >= n:
            # Out-of-segment continuation: the threaded dispatcher owns
            # the resulting execute fault (or sentinel stop).
            _emit_side_exit(em, acct, off, cont)
            break
        index = offset >> 3

    # -- assemble ---------------------------------------------------------
    # The superblock is a closure: the inline-cache sites live in cells
    # of the enclosing ``_make_superblock`` scope, so they survive
    # across invocations — a short trace dispatched thousands of times
    # warms each site once, not once per call.  The entry guard flushes
    # every site when the function is handed a different Memory (the
    # compiled fn is shared across VMs of the same program content) or
    # when segment permissions changed since the last call.
    cells = []
    for s in em.load_sites:
        cells += [f"_lb{s}", f"_ll{s}", f"_ld{s}"]
    for s in em.store_sites:
        cells += [f"_sb{s}", f"_sl{s}", f"_sd{s}"]
    invalidate = " = ".join(
        [f"_lb{s} = _ll{s}" for s in em.load_sites]
        + [f"_sb{s} = _sl{s}" for s in em.store_sites]
    )
    out = [f"# superblock @{entry_pc:#010x} "
           f"({len(visited)} blocks, {total} instrs"
           f"{', looped' if looped else ''})",
           "def _make_superblock():"]
    body = "    "
    if cells:
        out.append("    _mem = None")
        out.append("    _ep = 0")
        out.append(f"    {invalidate} = 0")
        names = " = ".join(f"_ld{s}" for s in em.load_sites)
        if names:
            out.append(f"    {names} = None")
        names = " = ".join(f"_sd{s}" for s in em.store_sites)
        if names:
            out.append(f"    {names} = None")
    out.append("    def _superblock(vm, state, regs, fregs, memory):")
    body = "        "
    if cells:
        decl = ["_mem", "_ep"] + cells
        for i in range(0, len(decl), 8):
            out.append(body + "nonlocal " + ", ".join(decl[i:i + 8]))
        out.append(body + "if _mem is not memory "
                          "or _ep != memory.perm_epoch:")
        out.append(body + "    _mem = memory")
        out.append(body + "    _ep = memory.perm_epoch")
        out.append(body + f"    {invalidate} = 0")
    pad = body
    if looped:
        out.append(body + "while True:")
        pad = body + "    "
    for line in em.lines:
        if line.lstrip() == _FLUSH:
            if cells:
                indent = line[:len(line) - len(line.lstrip())]
                out.append(pad + indent + invalidate + " = 0")
                out.append(pad + indent + "_ep = memory.perm_epoch")
            continue
        out.append(pad + line)
    if looped:
        # Backedge: commit the iteration, honour block-level fuel cuts
        # (the watchdog zeroes vm.fuel asynchronously), and go again.
        out.append(pad + f"# backedge -> @{entry_pc:#010x}")
        out.append(pad + f"state.instret += {acct.expr(off)}")
        out.append(pad + "if state.instret > vm.fuel:")
        out.append(pad + f"    state.pc = {entry_pc:#x}")
        out.append(pad + "    raise FuelExhausted("
                   "'exceeded fuel of %d instructions' % (vm.fuel,))")
    out.append("    return _superblock")
    out.append("_superblock = _make_superblock()")
    return "\n".join(out) + "\n"


def compile_superblock(program, entry_index: int, overrides=None):
    """Compile the superblock entered at *entry_index*.

    Returns ``(source, function)``; the function has the signature
    ``fn(vm, state, regs, fregs, memory)`` and binds no VM state, so it
    is shareable across VMs (and cacheable under ``("jit-omni", digest,
    entry)`` keys — but only when compiled without *overrides*, which
    encode one VM's runtime profile).
    """
    source = superblock_source(program, entry_index, overrides)
    entry_pc = CODE_BASE + entry_index * INSTR_SIZE
    code = compile(source, f"<jit-omni@{entry_pc:#010x}>", "exec")
    namespace = dict(_EXEC_GLOBALS)
    exec(code, namespace)
    return source, namespace["_superblock"]


def _path_reaches(instrs, n, start, entry, limit=MAX_TRACE_BLOCKS):
    """Bounded DFS over the static block graph: can control flow from
    block *start* get back to block *entry* without an indirect jump?
    Used by the promotion policy to tell a mispredicted cycle (worth
    re-forming the trace) from a genuine trace departure."""
    seen: set[int] = set()
    stack = [start]
    while stack and len(seen) < limit:
        idx = stack.pop()
        if idx == entry:
            return True
        if idx in seen or idx < 0 or idx >= n:
            continue
        seen.add(idx)
        i = idx
        while i < n:
            instr = instrs[i]
            if instr.spec.kind in _TERM_KINDS or instr.op in ("trap",
                                                              "sethnd"):
                break
            i += 1
        else:
            continue
        instr = instrs[i]
        kind = instr.spec.kind
        if kind in ("branch", "branchi"):
            t = u32(instr.imm) - CODE_BASE
            if not t & 7:
                stack.append(t >> 3)
            stack.append(i + 1)
        elif kind in ("jump", "call"):
            t = u32(instr.imm) - CODE_BASE
            if not t & 7:
                stack.append(t >> 3)
        elif kind == "host" or instr.op == "sethnd":
            stack.append(i + 1)
        # ijump / icall / trap: the walk stops.
    return False


# ---------------------------------------------------------------------------
# the tiering VM
# ---------------------------------------------------------------------------

class JitVM(SideExitPromotion, ThreadedVM):
    """ThreadedVM with the superblock JIT tier on top.

    Cold blocks run on the inherited threaded tier while per-entry heat
    counters accumulate; entries that reach ``heat`` dispatches are
    compiled (or fetched from the shared side table) and dispatch to
    their superblock from then on.  ``count_opcodes`` still forces the
    legacy per-instruction loop, exactly as for :class:`ThreadedVM`.
    Guarded side exits that themselves cross the heat threshold are
    promoted (see :class:`repro.jitcore.SideExitPromotion`): the trace
    is re-formed with the hot direction on trace, or — when the exit
    genuinely leaves the trace's cycle — a trace is anchored at the
    exit target without waiting out the dispatch heat ramp.
    """

    def __init__(self, program, memory, hostcall=None, fuel=50_000_000,
                 threaded=None, cache=None, digest=None, heat=JIT_HEAT):
        super().__init__(program, memory, hostcall, fuel, threaded=threaded)
        self._jit_cache = cache
        self._jit_digest = digest
        self._jit_heat = heat
        self._heat = [0] * self._threaded.length
        self._superblocks: dict[int, object] = {}
        self._jit_sources: dict[int, str] = {}
        self._superblocks_run = 0
        self._superblocks_compiled = 0
        self._jit_deopts = 0
        self._jit_compile_ms = 0.0
        profile = None
        if cache is not None and digest is not None:
            profile_key = ("jit-profile-omni", digest)
            profile = cache.probe_predecoded(profile_key)
            if profile is None:
                profile = self.fresh_profile()
                cache.put_predecoded(profile_key, profile)
        self._init_promotion(profile)
        # Adopted-profile entries dispatch straight to their promoted
        # superblocks (the plain warm path would find the unpromoted
        # form under the ("jit-omni", …) keys).
        self._superblocks.update(self._promoted_fns)

    def run(self, entry=None):
        compiled_before = self._superblocks_compiled
        deopts_before = self._jit_deopts
        ms_before = self._jit_compile_ms
        runs_before = self._superblocks_run
        promotions_before = self._jit_promotions
        try:
            return super().run(entry)
        finally:
            if metrics.active():
                compiled = self._superblocks_compiled - compiled_before
                if compiled:
                    metrics.count("execute.superblocks", compiled)
                deopts = self._jit_deopts - deopts_before
                if deopts:
                    metrics.count("execute.deopts", deopts)
                ms = self._jit_compile_ms - ms_before
                if ms:
                    metrics.count("execute.jit_compile_ms", ms)
                runs = self._superblocks_run - runs_before
                if runs:
                    metrics.count("execute.superblock_runs", runs)
                promotions = self._jit_promotions - promotions_before
                if promotions:
                    metrics.count("execute.jit_promotions", promotions)

    def _compile_entry(self, index):
        """Compile (or fetch from the side table) the superblock at
        *index* and install it in the dispatch map.  Entries with
        promotion overrides are profile-specialized: their compiled
        form travels with the promotion profile, not the plain
        ``("jit-omni", …)`` keys."""
        overrides = self._trace_overrides.get(index)
        cache = self._jit_cache
        key = None
        if overrides:
            fn = self._promoted_fns.get(index)
            if fn is not None:
                self._superblocks[index] = fn
                return fn
        elif cache is not None and self._jit_digest is not None:
            key = ("jit-omni", self._jit_digest, index)
            fn = cache.probe_predecoded(key)
            if fn is not None:
                self._superblocks[index] = fn
                return fn
        start = time.perf_counter()
        source, fn = compile_superblock(self._threaded, index, overrides)
        self._jit_compile_ms += (time.perf_counter() - start) * 1000.0
        self._superblocks_compiled += 1
        self._jit_sources[index] = source
        self._superblocks[index] = fn
        if overrides:
            self._promoted_fns[index] = fn
        elif key is not None:
            cache.put_predecoded(key, fn)
        return fn

    # -- promotion hooks (repro.jitcore.SideExitPromotion) ---------------

    def _promotion_profitable(self, entry, site, exit_loc):
        instrs = self._threaded.instrs
        n = self._threaded.length
        entry_pc = CODE_BASE + entry * INSTR_SIZE
        b_off = site - CODE_BASE
        if b_off & 7 or not 0 <= (b_off >> 3) < n:
            return False
        branch = instrs[b_off >> 3]
        if u32(branch.imm) == entry_pc or site + INSTR_SIZE == entry_pc:
            # Loop-closure edges are never overridden: their side exit
            # legitimately fires once per superblock entry, and flipping
            # the prediction would destroy the loop trace.
            return False
        e_off = exit_loc - CODE_BASE
        if e_off & 7 or not 0 <= (e_off >> 3) < n:
            return False
        return _path_reaches(instrs, n, e_off >> 3, entry)

    def _repromote_entry(self, entry):
        start = time.perf_counter()
        overrides = self._trace_overrides.get(entry)
        source, fn = compile_superblock(self._threaded, entry, overrides)
        self._jit_compile_ms += (time.perf_counter() - start) * 1000.0
        self._superblocks_compiled += 1
        self._jit_sources[entry] = source
        self._superblocks[entry] = fn
        if overrides:
            self._promoted_fns[entry] = fn
        else:
            # all overrides reverted: the plain trace is current again
            self._promoted_fns.pop(entry, None)

    def _anchor_exit(self, exit_loc):
        off = exit_loc - CODE_BASE
        if off & 7 or not 0 <= (off >> 3) < self._threaded.length:
            return
        index = off >> 3
        if index not in self._superblocks:
            self._compile_entry(index)

    def _run_loop(self, state, instrs, sentinel):
        if self.count_opcodes:
            # Instruction-mix instrumentation needs per-instruction
            # dispatch; the legacy loop is the measurement path.
            return OmniVM._run_loop(self, state, instrs, sentinel)
        program = self._threaded
        blocks = program.blocks
        build = program.build_block
        n = program.length
        regs = state.regs
        fregs = state.fregs
        memory = self.memory
        heat = self._heat
        threshold = self._jit_heat
        sb_get = self._superblocks.get
        digest = self._jit_digest
        cache_get = (self._jit_cache.probe_predecoded
                     if self._jit_cache is not None and digest is not None
                     else None)
        blocks_run = 0
        fused_run = 0
        sb_run = 0
        try:
            while not state.halted:
                pc = state.pc
                if pc == sentinel:
                    break
                offset = pc - CODE_BASE
                index = offset >> 3
                if offset & 7 or index < 0 or index >= n:
                    raise AccessViolation(
                        f"execute at bad address {pc:#010x}", pc, "execute"
                    )
                fn = sb_get(index)
                if fn is None:
                    h = heat[index] + 1
                    heat[index] = h
                    if h >= threshold:
                        fn = self._compile_entry(index)
                    elif h == 1 and cache_get is not None:
                        # Warm process: another VM of the same program
                        # already compiled this entry — install it
                        # without waiting out the heat threshold.
                        fn = cache_get(("jit-omni", digest, index))
                        if fn is not None:
                            self._superblocks[index] = fn
                if fn is not None:
                    # -- superblock tier ---------------------------------
                    sb_run += 1
                    try:
                        fn(self, state, regs, fregs, memory)
                    except AccessViolation as violation:
                        # The superblock committed the retired prefix and
                        # fault pc before raising; deliver like the
                        # threaded tier.
                        self._deliver_violation(violation)
                    if state.instret > self.fuel and not state.halted:
                        raise FuelExhausted(
                            f"exceeded fuel of {self.fuel} instructions"
                        )
                    continue
                # -- threaded tier (identical to ThreadedVM._run_loop) ---
                block = blocks[index]
                if block is None:
                    block = build(index)
                body, body_count, term, term_pc, term_count, fused = block
                blocks_run += 1
                fused_run += fused
                try:
                    for fn in body:
                        fn(regs, fregs, memory)
                except AccessViolation as violation:
                    fault_pc = violation.fault_pc
                    state.instret += ((fault_pc - pc) >> 3) + 1
                    state.pc = fault_pc
                    self._deliver_violation(violation)
                    if state.instret > self.fuel:
                        raise FuelExhausted(
                            f"exceeded fuel of {self.fuel} instructions"
                        )
                    continue
                except VMRuntimeError as err:
                    fault_pc = getattr(err, "fault_pc", None)
                    if fault_pc is not None:
                        state.instret += ((fault_pc - pc) >> 3) + 1
                        state.pc = fault_pc
                    raise
                state.instret += body_count + term_count
                state.pc = term_pc
                if term is not None:
                    try:
                        state.pc = term(self, state, regs)
                    except AccessViolation as violation:
                        fault_pc = getattr(violation, "fault_pc", term_pc)
                        retired = ((fault_pc - term_pc) >> 3) + 1
                        state.instret -= term_count - retired
                        state.pc = fault_pc
                        self._deliver_violation(violation)
                        if state.instret > self.fuel:
                            raise FuelExhausted(
                                f"exceeded fuel of {self.fuel} instructions"
                            )
                        continue
                if state.instret > self.fuel and not state.halted:
                    raise FuelExhausted(
                        f"exceeded fuel of {self.fuel} instructions"
                    )
        finally:
            self._blocks_run += blocks_run
            self._fused_run += fused_run
            self._superblocks_run += sb_run
        return s32(state.regs[1]) if not state.halted else state.exit_code

