"""Reference interpreter for OmniVM.

This is the *definition* of OmniVM semantics: the segmented memory model
with host-imposed permissions, the virtual exception model (access
violations are delivered to a handler the module registers with
``sethnd``), and the precise 32-bit / IEEE behaviour of every instruction.
The translators are tested differentially against it: a module must
produce identical observable output interpreted here and translated to
any simulated target.

The interpreter is not the performance path (the paper's whole point is
that translation beats interpretation); it is the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro import metrics
from repro.errors import (
    AccessViolation,
    FuelExhausted,
    VMRuntimeError,
    VMTrap,
)
from repro.omnivm.isa import (
    BRANCH_PREDS,
    INSTR_SIZE,
    REG_RA,
    REG_SP,
    SET_PREDS,
    VMInstr,
)
from repro.omnivm.linker import LinkedProgram
from repro.omnivm.memory import CODE_BASE, Memory, STACK_TOP
from repro.omnivm import semantics
from repro.utils.bits import (
    add32,
    mul32,
    round_f32,
    s32,
    sll32,
    sra32,
    srl32,
    sub32,
    u32,
)

_PRED_FN = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}

#: Exception cause codes delivered to the module handler in r1.
CAUSE_LOAD = 1
CAUSE_STORE = 2
CAUSE_EXEC = 3

#: Immediate-form ALU opcodes and their register-register equivalents.
_IMM_TO_REG_OP = {
    "addi": "add", "muli": "mul", "andi": "and", "ori": "or",
    "xori": "xor", "slli": "sll", "srli": "srl", "srai": "sra",
    "seqi": "seq", "snei": "sne", "slti": "slt", "slei": "sle",
    "sgti": "sgt", "sgei": "sge", "sltui": "sltu", "sleui": "sleu",
    "sgtui": "sgtu", "sgeui": "sgeu",
}

#: Load opcode -> (size in bytes, sign-extending?)
_LOAD_SHAPE = {
    "lb": (1, True), "lbu": (1, False),
    "lh": (2, True), "lhu": (2, False),
    "lw": (4, False),
}

_STORE_SIZE = {"sb": 1, "sh": 2, "sw": 4}


@dataclass
class VMState:
    """Architectural state of one OmniVM instance."""

    regs: list[int] = field(default_factory=lambda: [0] * 16)
    fregs: list[float] = field(default_factory=lambda: [0.0] * 16)
    pc: int = 0
    handler: int = 0  # access-violation handler address (0 = none)
    halted: bool = False
    exit_code: int = 0
    instret: int = 0  # dynamic instruction count


class OmniVM:
    """Executes a linked mobile module under the reference semantics."""

    def __init__(
        self,
        program: LinkedProgram,
        memory: Memory,
        hostcall: Callable[["OmniVM", int], None] | None = None,
        fuel: int = 50_000_000,
    ):
        self.program = program
        self.memory = memory
        self.hostcall = hostcall
        self.fuel = fuel
        self.state = VMState()
        self.state.regs[REG_SP] = STACK_TOP
        #: Per-opcode dynamic execution counts (instruction-mix
        #: instrumentation, as in the paper's translator hooks).
        self.opcode_counts: dict[str, int] = {}
        self.count_opcodes = False

    # -- control -------------------------------------------------------------

    def run(self, entry: str | int | None = None) -> int:
        """Run from *entry* (symbol or address) until exit; returns the
        module exit code (value of r1 at the final return)."""
        state = self.state
        if entry is None:
            state.pc = self.program.entry_address
        elif isinstance(entry, str):
            state.pc = self.program.address_of(entry)
        else:
            state.pc = entry
        # A sentinel return address outside the code segment stops the run.
        sentinel = 0
        state.regs[REG_RA] = sentinel
        instrs = self.program.instrs
        start_instret = state.instret
        try:
            return self._run_loop(state, instrs, sentinel)
        finally:
            if metrics.active():
                metrics.count("execute.omni.instret",
                              state.instret - start_instret)

    def _run_loop(self, state, instrs, sentinel) -> int:
        # Instruction-mix instrumentation is opt-in; the flag is tested
        # once here so the uncounted path carries no per-step overhead.
        if self.count_opcodes:
            return self._run_loop_counting(state, instrs, sentinel)
        while not state.halted:
            if state.pc == sentinel:
                break
            index = (state.pc - CODE_BASE) // INSTR_SIZE
            if not (0 <= index < len(instrs)) or (state.pc - CODE_BASE) % INSTR_SIZE:
                raise AccessViolation(
                    f"execute at bad address {state.pc:#010x}", state.pc, "execute"
                )
            instr = instrs[index]
            state.instret += 1
            if state.instret > self.fuel:
                raise FuelExhausted(
                    f"exceeded fuel of {self.fuel} instructions"
                )
            try:
                self.step(instr)
            except AccessViolation as violation:
                self._deliver_violation(violation)
        return s32(state.regs[1]) if not state.halted else state.exit_code

    def _run_loop_counting(self, state, instrs, sentinel) -> int:
        counts = self.opcode_counts
        while not state.halted:
            if state.pc == sentinel:
                break
            index = (state.pc - CODE_BASE) // INSTR_SIZE
            if not (0 <= index < len(instrs)) or (state.pc - CODE_BASE) % INSTR_SIZE:
                raise AccessViolation(
                    f"execute at bad address {state.pc:#010x}", state.pc, "execute"
                )
            instr = instrs[index]
            state.instret += 1
            if state.instret > self.fuel:
                raise FuelExhausted(
                    f"exceeded fuel of {self.fuel} instructions"
                )
            counts[instr.op] = counts.get(instr.op, 0) + 1
            try:
                self.step(instr)
            except AccessViolation as violation:
                self._deliver_violation(violation)
        return s32(state.regs[1]) if not state.halted else state.exit_code

    def _deliver_violation(self, violation: AccessViolation) -> None:
        """The virtual exception model: jump to the registered handler with
        the cause in r1 and the faulting address in r2; abort otherwise."""
        state = self.state
        if state.handler == 0:
            raise violation
        cause = {"load": CAUSE_LOAD, "store": CAUSE_STORE,
                 "execute": CAUSE_EXEC}.get(violation.kind, CAUSE_STORE)
        state.regs[1] = cause
        state.regs[2] = u32(violation.address)
        # r3 holds the pc of the faulting instruction so handlers can skip.
        state.regs[3] = u32(state.pc)
        state.pc = state.handler

    # -- single step -----------------------------------------------------------

    def step(self, instr: VMInstr) -> None:
        state = self.state
        op = instr.op
        regs = state.regs
        fregs = state.fregs
        next_pc = state.pc + INSTR_SIZE

        kind = instr.spec.kind
        if kind == "alu":
            regs[instr.rd] = self._alu(op, regs[instr.rs], regs[instr.rt])
        elif kind == "alui":
            regs[instr.rd] = self._alu(
                _IMM_TO_REG_OP[op], regs[instr.rs], u32(instr.imm)
            )
        elif kind == "li":
            regs[instr.rd] = u32(instr.imm)
        elif kind == "mov":
            regs[instr.rd] = regs[instr.rs]
        elif kind == "load":
            size, signed = _LOAD_SHAPE[op]
            address = add32(regs[instr.rs], u32(instr.imm))
            regs[instr.rd] = u32(self.memory.load(address, size, signed))
        elif kind == "loadx":
            size, signed = _LOAD_SHAPE[op[:-1]]
            address = add32(regs[instr.rs], regs[instr.rt])
            regs[instr.rd] = u32(self.memory.load(address, size, signed))
        elif kind == "store":
            size = _STORE_SIZE[op]
            address = add32(regs[instr.rs], u32(instr.imm))
            self.memory.store(address, size, regs[instr.rt])
        elif kind == "storex":
            size = _STORE_SIZE[op[:-1]]
            address = add32(regs[instr.rs], regs[instr.rd])
            self.memory.store(address, size, regs[instr.rt])
        elif kind == "fload":
            address = add32(regs[instr.rs], u32(instr.imm))
            fregs[instr.fd] = (
                self.memory.load_f32(address) if op == "lfs"
                else self.memory.load_f64(address)
            )
        elif kind == "floadx":
            address = add32(regs[instr.rs], regs[instr.rt])
            fregs[instr.fd] = (
                self.memory.load_f32(address) if op == "lfsx"
                else self.memory.load_f64(address)
            )
        elif kind == "fstore":
            address = add32(regs[instr.rs], u32(instr.imm))
            if op == "sfs":
                self.memory.store_f32(address, fregs[instr.ft])
            else:
                self.memory.store_f64(address, fregs[instr.ft])
        elif kind == "fstorex":
            address = add32(regs[instr.rs], regs[instr.rd])
            if op == "sfsx":
                self.memory.store_f32(address, fregs[instr.ft])
            else:
                self.memory.store_f64(address, fregs[instr.ft])
        elif kind == "falu":
            fregs[instr.fd] = self._falu(op, instr)
        elif kind == "fcmp":
            regs[instr.rd] = self._fcmp(op, fregs[instr.fs], fregs[instr.ft])
        elif kind == "cvt":
            self._convert(op, instr)
        elif kind == "ext":
            regs[instr.rd] = self._extend(op, regs[instr.rs])
        elif kind == "branch":
            pred, signed = BRANCH_PREDS[op]
            a, b = regs[instr.rs], regs[instr.rt]
            if signed:
                a, b = s32(a), s32(b)
            if _PRED_FN[pred](a, b):
                next_pc = u32(instr.imm)
        elif kind == "branchi":
            base = op[:-1]
            pred, signed = BRANCH_PREDS[base]
            a = s32(regs[instr.rs]) if signed else regs[instr.rs]
            b = instr.imm2 if signed else u32(instr.imm2)
            if _PRED_FN[pred](a, b):
                next_pc = u32(instr.imm)
        elif kind == "jump":
            next_pc = u32(instr.imm)
        elif kind == "call":
            regs[REG_RA] = next_pc
            next_pc = u32(instr.imm)
        elif kind == "ijump":
            next_pc = regs[instr.rs]
        elif kind == "icall":
            regs[REG_RA] = next_pc
            next_pc = regs[instr.rs]
        elif kind == "host":
            if self.hostcall is None:
                raise VMRuntimeError("module made a hostcall but no host is attached")
            self.hostcall(self, instr.imm)
        elif op == "trap":
            raise VMTrap(f"module trap {instr.imm}", instr.imm)
        elif op == "nop":
            pass
        elif op == "sethnd":
            state.handler = regs[instr.rs]
        else:  # pragma: no cover
            raise VMRuntimeError(f"unimplemented opcode {op!r}")
        state.pc = next_pc

    # -- helpers ------------------------------------------------------------------

    def _alu(self, op: str, a: int, b: int) -> int:
        if op in SET_PREDS:
            pred, signed = SET_PREDS[op]
            x, y = (s32(a), s32(b)) if signed else (a, b)
            return 1 if _PRED_FN[pred](x, y) else 0
        if op == "add":
            return add32(a, b)
        if op == "sub":
            return sub32(a, b)
        if op == "mul":
            return mul32(a, b)
        if op in ("div", "divu", "rem", "remu"):
            return semantics.int_divide(op, a, b)
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        if op == "sll":
            return sll32(a, b)
        if op == "srl":
            return srl32(a, b)
        if op == "sra":
            return sra32(a, b)
        raise VMRuntimeError(f"unknown ALU op {op!r}")  # pragma: no cover

    def _falu(self, op: str, instr: VMInstr) -> float:
        fregs = self.state.fregs
        a = fregs[instr.fs]
        single = op in ("fadds", "fsubs", "fmuls", "fdivs",
                        "fnegs", "fabss", "fmovs")
        if op in ("fmovs", "fmovd", "fnegs", "fnegd", "fabss", "fabsd"):
            result = semantics.fp_unop(op[:-1], a)
        else:
            result = semantics.fp_binop(op[:-1], a, fregs[instr.ft])
        return round_f32(result) if single else result

    def _fcmp(self, op: str, a: float, b: float) -> int:
        pred = {"fceq": "eq", "fclt": "lt", "fcle": "le"}[op[:-1]]
        return 1 if _PRED_FN[pred](a, b) else 0

    def _convert(self, op: str, instr: VMInstr) -> None:
        regs, fregs = self.state.regs, self.state.fregs
        if op == "cvtdw":
            fregs[instr.fd] = float(s32(regs[instr.rs]))
        elif op == "cvtsw":
            fregs[instr.fd] = round_f32(float(s32(regs[instr.rs])))
        elif op == "cvtdwu":
            fregs[instr.fd] = float(regs[instr.rs])
        elif op == "cvtswu":
            fregs[instr.fd] = round_f32(float(regs[instr.rs]))
        elif op in ("cvtwd", "cvtws"):
            regs[instr.rd] = semantics.f_to_i32(fregs[instr.fs])
        elif op in ("cvtwud", "cvtwus"):
            regs[instr.rd] = semantics.f_to_u32(fregs[instr.fs])
        elif op == "cvtds":
            fregs[instr.fd] = fregs[instr.fs]
        elif op == "cvtsd":
            fregs[instr.fd] = round_f32(fregs[instr.fs])
        else:  # pragma: no cover
            raise VMRuntimeError(f"unknown conversion {op!r}")

    def _extend(self, op: str, value: int) -> int:
        return semantics.extend(op, value)
