"""The OmniVM linker.

Combines one or more :class:`~repro.omnivm.objfile.ObjectModule` objects
into an executable mobile module: concatenates text and data sections,
assigns absolute addresses inside the standard segment layout, resolves
every symbolic label to a 32-bit address, and applies data relocations.

Because symbols are fully resolved here — before the module ships — the
translated native code never pays dynamic-linking costs; the paper notes
this lets the SPARC translator keep a global pointer set up across calls.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro import metrics
from repro.errors import LinkError
from repro.omnivm.encoding import encode_program
from repro.omnivm.isa import INSTR_SIZE, VMInstr
from repro.omnivm.memory import CODE_BASE, DATA_BASE
from repro.omnivm.objfile import ObjectModule
from repro.sfi.policy import check_sentinel_clearance
from repro.utils.bits import align_up, u32


@dataclass
class LinkedProgram:
    """A fully linked, executable mobile module."""

    name: str
    instrs: list[VMInstr] = field(default_factory=list)
    data_image: bytearray = field(default_factory=bytearray)
    symbols: dict[str, int] = field(default_factory=dict)
    #: name -> (first instruction index, one-past-last index)
    function_ranges: dict[str, tuple[int, int]] = field(default_factory=dict)
    entry_symbol: str = "main"
    #: Index of the first instruction within the code segment.  The
    #: static linker always produces base 0; the dynamic link-loader
    #: builds per-module translation units whose text starts deeper in
    #: the segment (``symbols``/``function_ranges`` use absolute
    #: addresses/indices either way).
    base_index: int = 0
    #: OmniVM byte addresses of control-transfer targets that live in
    #: *other* modules of a dynamic link.  Empty for whole programs.
    extern_addrs: frozenset[int] = frozenset()

    @property
    def entry_address(self) -> int:
        try:
            return self.symbols[self.entry_symbol]
        except KeyError:
            raise LinkError(f"entry symbol {self.entry_symbol!r} not defined")

    @property
    def text_image(self) -> bytes:
        return encode_program(self.instrs)

    def address_of(self, symbol: str) -> int:
        if symbol not in self.symbols:
            raise LinkError(f"unknown symbol {symbol!r}")
        return self.symbols[symbol]

    def instr_index_for_address(self, address: int) -> int:
        offset = address - (CODE_BASE + self.base_index * INSTR_SIZE)
        if offset % INSTR_SIZE != 0 or not (
            0 <= offset < len(self.instrs) * INSTR_SIZE
        ):
            raise LinkError(f"address {address:#x} is not an instruction")
        return offset // INSTR_SIZE


def link(objects: list[ObjectModule], name: str = "a.out",
         entry_symbol: str = "main") -> LinkedProgram:
    """Link *objects* into an executable module."""
    with metrics.stage("link"):
        return _link(objects, name, entry_symbol)


def _link(objects: list[ObjectModule], name: str,
          entry_symbol: str) -> LinkedProgram:
    program = LinkedProgram(name, entry_symbol=entry_symbol)

    # Pass 1: lay out text and data, building the global symbol table.
    # Local (non-global) symbols are mangled with the object index so the
    # same label name can appear in several objects.
    text_base_index: list[int] = []
    data_base: list[int] = []
    instr_cursor = 0
    data_cursor = 0
    for obj in objects:
        text_base_index.append(instr_cursor)
        instr_cursor += len(obj.text)
        data_cursor = align_up(data_cursor, 8)
        data_base.append(data_cursor)
        data_cursor += len(obj.data) + obj.bss_size
    # The last aligned slot of the code segment is the return sentinel;
    # text that reaches it would shadow the halt address.
    check_sentinel_clearance(0, instr_cursor)

    def mangle(obj_index: int, symbol: str, is_global: bool) -> str:
        return symbol if is_global else f"{symbol}@{obj_index}"

    for obj_index, obj in enumerate(objects):
        for sym in obj.symbols:
            key = mangle(obj_index, sym.name, sym.is_global)
            if sym.section == "text":
                if sym.offset % INSTR_SIZE != 0:
                    raise LinkError(f"misaligned text symbol {sym.name!r}")
                address = CODE_BASE + (
                    text_base_index[obj_index] * INSTR_SIZE + sym.offset
                )
            elif sym.section == "data":
                address = DATA_BASE + data_base[obj_index] + sym.offset
            elif sym.section == "bss":
                address = DATA_BASE + data_base[obj_index] + len(obj.data) + sym.offset
            else:
                raise LinkError(f"symbol {sym.name!r} in bad section {sym.section!r}")
            if key in program.symbols:
                if sym.is_global:
                    raise LinkError(f"duplicate symbol {sym.name!r}")
                raise LinkError(f"duplicate local symbol {key!r}")
            program.symbols[key] = u32(address)

    # Pass 2: copy text, resolving labels.
    for obj_index, obj in enumerate(objects):
        local_names = {s.name for s in obj.symbols if not s.is_global}
        for instr in obj.text:
            clone = VMInstr(instr.op, instr.rd, instr.rs, instr.rt,
                            instr.fd, instr.fs, instr.ft, instr.imm,
                            instr.imm2, None)
            if instr.label is not None:
                key = instr.label
                if key in local_names:
                    key = mangle(obj_index, key, False)
                if key not in program.symbols:
                    raise LinkError(
                        f"undefined symbol {instr.label!r} referenced from "
                        f"object {obj.name!r}"
                    )
                clone.imm = program.symbols[key]
            program.instrs.append(clone)

    # Pass 3: copy data and apply relocations.
    program.data_image = bytearray(data_cursor)
    for obj_index, obj in enumerate(objects):
        base = data_base[obj_index]
        program.data_image[base:base + len(obj.data)] = obj.data
        local_names = {s.name for s in obj.symbols if not s.is_global}
        for reloc in obj.data_relocs:
            key = reloc.symbol
            if key in local_names:
                key = mangle(obj_index, key, False)
            if key not in program.symbols:
                raise LinkError(
                    f"undefined symbol {reloc.symbol!r} in data of {obj.name!r}"
                )
            where = base + reloc.offset
            (addend,) = struct.unpack_from("<I", program.data_image, where)
            struct.pack_into(
                "<I", program.data_image, where,
                u32(program.symbols[key] + addend),
            )

    # Pass 4: function ranges (for the verifier and translators).
    _compute_function_ranges(program, objects, text_base_index)
    return program


def _compute_function_ranges(
    program: LinkedProgram,
    objects: list[ObjectModule],
    text_base_index: list[int],
) -> None:
    starts: list[tuple[int, str]] = []
    for obj_index, obj in enumerate(objects):
        for sym in obj.symbols:
            if sym.section == "text" and sym.is_global:
                index = text_base_index[obj_index] + sym.offset // INSTR_SIZE
                starts.append((index, sym.name))
    starts.sort()
    for position, (start, name) in enumerate(starts):
        end = (
            starts[position + 1][0]
            if position + 1 < len(starts)
            else len(program.instrs)
        )
        program.function_ranges[name] = (start, end)
