"""The OmniVM assembler: text assembly → object modules.

The paper's toolchain is "gcc → OmniVM assembler → OmniVM linker"; this
is the assembler.  It accepts a conventional two-section syntax::

    .text
    .globl main
    main:
        addi  r15, r15, -8
        sw    r14, r15, 0
        li    r1, 42
        li    r2, @counter      ; symbol address
        lw    r3, r2, 0
        beqi  r3, 0, done       ; 18-bit immediate compare-and-branch
        jal   helper
    done:
        lw    r14, r15, 0
        addi  r15, r15, 8
        jr    r14

    .data
    .globl counter
    counter:
        .word 5
        .word @main             ; address relocation
        .byte 1, 2, 3
        .asciz "hello"
        .space 16
        .align 8

Labels in ``.text`` become text symbols (global if ``.globl``-declared,
local otherwise); the same for ``.data``.  Operand order follows the
instruction's format string in :mod:`repro.omnivm.isa`; stores are
written ``sw value, base, offset`` and indexed stores ``swx value, base,
index`` to match the disassembly produced by ``VMInstr.__str__``.
"""

from __future__ import annotations

import struct

from repro.errors import AsmError
from repro.omnivm.isa import INSTR_SIZE, SPEC_BY_NAME, VMInstr
from repro.omnivm.objfile import DataReloc, ObjectModule
from repro.utils.bits import align_up, s32


def assemble(source: str, module_name: str = "asm") -> ObjectModule:
    """Assemble OmniVM assembly text into an object module."""
    return _Assembler(module_name).run(source)


class _Assembler:
    def __init__(self, module_name: str):
        self.obj = ObjectModule(module_name)
        self.section = "text"
        self.data = bytearray()
        self.globals: set[str] = set()
        self.defined: dict[str, tuple[str, int]] = {}

    def run(self, source: str) -> ObjectModule:
        for line_no, raw in enumerate(source.splitlines(), start=1):
            line = raw.split(";")[0].split("#")[0].strip()
            if not line:
                continue
            try:
                self._line(line)
            except AsmError:
                raise
            except Exception as exc:
                raise AsmError(f"line {line_no}: {exc}") from exc
        self.obj.data = bytes(self.data)
        for name, (section, offset) in self.defined.items():
            self.obj.define(name, section, offset, name in self.globals)
        return self.obj

    def _line(self, line: str) -> None:
        if line.startswith("."):
            self._directive(line)
            return
        if line.endswith(":"):
            label = line[:-1].strip()
            if label in self.defined:
                raise AsmError(f"duplicate label {label!r}")
            if self.section == "text":
                self.defined[label] = ("text", len(self.obj.text) * INSTR_SIZE)
            else:
                self.defined[label] = ("data", len(self.data))
            return
        self._instruction(line)

    # -- directives ---------------------------------------------------------

    def _directive(self, line: str) -> None:
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if name == ".text":
            self.section = "text"
        elif name == ".data":
            self.section = "data"
        elif name == ".globl" or name == ".global":
            for symbol in rest.replace(",", " ").split():
                self.globals.add(symbol)
        elif name == ".import":
            for symbol in rest.replace(",", " ").split():
                if symbol not in self.obj.imports:
                    self.obj.imports.append(symbol)
        elif name == ".word":
            for item in _split_args(rest):
                if item.startswith("@"):
                    self.obj.data_relocs.append(
                        DataReloc(len(self.data), item[1:])
                    )
                    self.data += struct.pack("<I", 0)
                else:
                    self.data += struct.pack("<i", s32(_number(item)))
        elif name == ".half":
            for item in _split_args(rest):
                self.data += struct.pack("<h", _number(item))
        elif name == ".byte":
            for item in _split_args(rest):
                self.data += struct.pack("<B", _number(item) & 0xFF)
        elif name == ".double":
            for item in _split_args(rest):
                self.data += struct.pack("<d", float(item))
        elif name == ".float":
            for item in _split_args(rest):
                self.data += struct.pack("<f", float(item))
        elif name == ".asciz" or name == ".string":
            text = rest.strip()
            if not (text.startswith('"') and text.endswith('"')):
                raise AsmError(f"{name} needs a quoted string")
            decoded = text[1:-1].encode().decode("unicode_escape")
            self.data += decoded.encode("latin-1") + b"\x00"
        elif name == ".space" or name == ".zero":
            self.data += b"\x00" * _number(rest)
        elif name == ".align":
            if self.section != "data":
                raise AsmError(".align is only supported in .data")
            target = align_up(len(self.data), _number(rest))
            self.data += b"\x00" * (target - len(self.data))
        else:
            raise AsmError(f"unknown directive {name!r}")

    # -- instructions ----------------------------------------------------------

    def _instruction(self, line: str) -> None:
        if self.section != "text":
            raise AsmError("instruction outside .text")
        parts = line.split(None, 1)
        mnemonic = parts[0]
        spec = SPEC_BY_NAME.get(mnemonic)
        if spec is None:
            raise AsmError(f"unknown mnemonic {mnemonic!r}")
        operands = _split_args(parts[1]) if len(parts) > 1 else []
        if len(operands) != len(spec.fmt):
            raise AsmError(
                f"{mnemonic} expects {len(spec.fmt)} operands "
                f"(format {spec.fmt!r}), got {len(operands)}"
            )
        instr = VMInstr(mnemonic)
        for slot, operand in zip(spec.fmt, operands):
            if slot == "d":
                instr.rd = _int_reg(operand)
            elif slot == "s":
                instr.rs = _int_reg(operand)
            elif slot == "t":
                instr.rt = _int_reg(operand)
            elif slot == "D":
                instr.fd = _fp_reg(operand)
            elif slot == "S":
                instr.fs = _fp_reg(operand)
            elif slot == "T":
                instr.ft = _fp_reg(operand)
            elif slot == "i":
                if operand.startswith("@"):
                    instr.label = operand[1:]
                else:
                    instr.imm = s32(_number(operand))
            elif slot == "j":
                instr.imm2 = _number(operand)
                if not -(1 << 17) <= instr.imm2 < (1 << 17):
                    raise AsmError(
                        f"branch immediate {instr.imm2} exceeds 18 bits; "
                        f"use li + register branch"
                    )
            elif slot == "L":
                instr.label = operand.lstrip("@")
            else:  # pragma: no cover
                raise AsmError(f"bad format slot {slot!r}")
        self.obj.text.append(instr)


def _split_args(text: str) -> list[str]:
    """Split on commas not inside quotes."""
    args: list[str] = []
    depth_quote = False
    current = ""
    for ch in text:
        if ch == '"':
            depth_quote = not depth_quote
            current += ch
        elif ch == "," and not depth_quote:
            args.append(current.strip())
            current = ""
        else:
            current += ch
    if current.strip():
        args.append(current.strip())
    return args


def _number(text: str) -> int:
    text = text.strip()
    if text.startswith("'") and text.endswith("'") and len(text) >= 3:
        body = text[1:-1].encode().decode("unicode_escape")
        return ord(body)
    return int(text, 0)


def _int_reg(text: str) -> int:
    text = text.strip().lower()
    aliases = {"sp": 15, "ra": 14}
    if text in aliases:
        return aliases[text]
    if not text.startswith("r"):
        raise AsmError(f"expected integer register, got {text!r}")
    number = int(text[1:])
    if not 0 <= number < 16:
        raise AsmError(f"register {text!r} out of range")
    return number


def _fp_reg(text: str) -> int:
    text = text.strip().lower()
    if not text.startswith("f"):
        raise AsmError(f"expected FP register, got {text!r}")
    number = int(text[1:])
    if not 0 <= number < 16:
        raise AsmError(f"FP register {text!r} out of range")
    return number
