"""The OmniVM instruction set architecture.

OmniVM is the paper's *software-defined computer architecture*: a RISC-like
load/store machine with

* 16 integer registers (``r0``–``r15``; ``r15`` is the stack pointer and
  ``r14`` the link register by ABI convention — the hardware treats all 16
  uniformly) and 16 floating-point registers (``f0``–``f15``);
* memory access instructions with full **32-bit immediate offsets** and an
  **indexed (register+register) addressing mode** — the two features the
  paper credits for letting the compiler finish address arithmetic before
  load time;
* general **compare-and-branch** instructions (register/register and
  register/immediate, signed and unsigned) so translators can produce good
  code for both condition-code and compare-to-register branch models;
* endian-neutral sized data types with explicit extension instructions;
* a segmented virtual memory model with host-imposed permissions and a
  virtual exception model (``sethnd`` registers an access-violation
  handler; see :mod:`repro.omnivm.interp`).

Instructions are fixed-width (8 bytes when encoded: one opcode word and one
immediate word), so code addresses are byte offsets that are always
8-aligned — which is also what makes SFI's indirect-jump masking cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

NUM_INT_REGS = 16
NUM_FP_REGS = 16

#: Byte size of one encoded instruction.
INSTR_SIZE = 8

# ABI register conventions (the hardware itself is uniform).
REG_ZERO_HINT = 0  # r0 is general-purpose; codegen often keeps 0 here
REG_RV = 1  # return value / first argument
REG_ARGS = (1, 2, 3, 4)
FREG_RV = 1
FREG_ARGS = (1, 2, 3, 4)
REG_TMP = (5, 6, 7)  # caller-saved scratch
REG_SAVED = (8, 9, 10, 11, 12, 13)  # callee-saved
REG_RA = 14  # link register
REG_SP = 15  # stack pointer

INT_REG_NAMES = [f"r{i}" for i in range(NUM_INT_REGS)]
FP_REG_NAMES = [f"f{i}" for i in range(NUM_FP_REGS)]


@dataclass(frozen=True)
class OpSpec:
    """Static description of one OmniVM opcode.

    ``fmt`` encodes the operand list, one character per operand:

    =====  ====================================================
    ``d``  destination integer register
    ``s``  source integer register
    ``t``  second source integer register
    ``i``  32-bit immediate
    ``j``  18-bit signed immediate (imm2; branch compare constants)
    ``D``  destination FP register
    ``S``  source FP register
    ``T``  second source FP register
    ``L``  code label (branch/jump/call target)
    =====  ====================================================

    ``kind`` groups opcodes for the translators and verifier:
    ``alu``, ``alui``, ``li``, ``mov``, ``load``, ``loadx``, ``store``,
    ``storex``, ``fload``, ``floadx``, ``fstore``, ``fstorex``, ``falu``,
    ``fcmp``, ``cvt``, ``ext``, ``branch``, ``branchi``, ``jump``,
    ``call``, ``ijump``, ``icall``, ``host``, ``misc``.
    """

    name: str
    fmt: str
    kind: str
    code: int = field(default=-1, compare=False)

    @property
    def is_branch(self) -> bool:
        return self.kind in ("branch", "branchi")

    @property
    def is_control(self) -> bool:
        return self.kind in (
            "branch", "branchi", "jump", "call", "ijump", "icall",
        )

    @property
    def is_memory(self) -> bool:
        return self.kind in (
            "load", "loadx", "store", "storex",
            "fload", "floadx", "fstore", "fstorex",
        )

    @property
    def is_store(self) -> bool:
        return self.kind in ("store", "storex", "fstore", "fstorex")

    @property
    def is_load(self) -> bool:
        return self.kind in ("load", "loadx", "fload", "floadx")


def _specs() -> list[OpSpec]:
    table: list[OpSpec] = []

    def op(name: str, fmt: str, kind: str) -> None:
        table.append(OpSpec(name, fmt, kind))

    # Integer ALU, register-register.
    for name in ("add", "sub", "mul", "div", "divu", "rem", "remu",
                 "and", "or", "xor", "sll", "srl", "sra"):
        op(name, "dst", "alu")
    # Integer ALU, register-immediate (32-bit immediates throughout).
    for name in ("addi", "muli", "andi", "ori", "xori",
                 "slli", "srli", "srai"):
        op(name, "dsi", "alui")
    # Compare-to-register (full predicate set, reg and imm forms).
    for name in ("seq", "sne", "slt", "sle", "sgt", "sge",
                 "sltu", "sleu", "sgtu", "sgeu"):
        op(name, "dst", "alu")
    for name in ("seqi", "snei", "slti", "slei", "sgti", "sgei",
                 "sltui", "sleui", "sgtui", "sgeui"):
        op(name, "dsi", "alui")
    # Constants and moves.
    op("li", "di", "li")
    op("mov", "ds", "mov")
    # Loads: base + imm32, and indexed base + index.
    for name in ("lb", "lbu", "lh", "lhu", "lw"):
        op(name, "dsi", "load")
    for name in ("lbx", "lbux", "lhx", "lhux", "lwx"):
        op(name, "dst", "loadx")
    # Stores: value, base + imm32 / base + index.
    for name in ("sb", "sh", "sw"):
        op(name, "tsi", "store")  # rt = value, rs = base, imm
    for name in ("sbx", "shx", "swx"):
        op(name, "tsd", "storex")  # rt = value, rs = base, rd = index
    # FP loads/stores (f32 suffix s, f64 suffix d).
    op("lfs", "Dsi", "fload")
    op("lfd", "Dsi", "fload")
    op("lfsx", "Dst", "floadx")
    op("lfdx", "Dst", "floadx")
    op("sfs", "Tsi", "fstore")  # T = value, rs = base, imm
    op("sfd", "Tsi", "fstore")
    op("sfsx", "Tsd", "fstorex")
    op("sfdx", "Tsd", "fstorex")
    # FP arithmetic.
    for name in ("fadds", "fsubs", "fmuls", "fdivs",
                 "faddd", "fsubd", "fmuld", "fdivd"):
        op(name, "DST", "falu")
    for name in ("fnegs", "fnegd", "fabss", "fabsd", "fmovs", "fmovd"):
        op(name, "DS", "falu")
    # FP compare to integer register.
    for name in ("fceqs", "fclts", "fcles", "fceqd", "fcltd", "fcled"):
        op(name, "dST", "fcmp")
    # Conversions.
    op("cvtdw", "Ds", "cvt")   # i32 -> f64
    op("cvtsw", "Ds", "cvt")   # i32 -> f32
    op("cvtdwu", "Ds", "cvt")  # u32 -> f64
    op("cvtswu", "Ds", "cvt")  # u32 -> f32
    op("cvtwd", "dS", "cvt")   # f64 -> i32 (truncate)
    op("cvtws", "dS", "cvt")   # f32 -> i32 (truncate)
    op("cvtwud", "dS", "cvt")  # f64 -> u32 (truncate)
    op("cvtwus", "dS", "cvt")  # f32 -> u32 (truncate)
    op("cvtds", "DS", "cvt")   # f32 -> f64
    op("cvtsd", "DS", "cvt")   # f64 -> f32
    # Endian-neutral extension/extraction.
    for name in ("sext8", "sext16", "zext8", "zext16"):
        op(name, "ds", "ext")
    # Compare-and-branch: register/register and register/immediate.
    for name in ("beq", "bne", "blt", "ble", "bgt", "bge",
                 "bltu", "bleu", "bgtu", "bgeu"):
        op(name, "stL", "branch")
    # The immediate compare-and-branch forms carry the compare constant in
    # an 18-bit field (``j`` / imm2) alongside the 32-bit target address;
    # the compiler falls back to li + register branch for larger constants.
    for name in ("beqi", "bnei", "blti", "blei", "bgti", "bgei",
                 "bltui", "bleui", "bgtui", "bgeui"):
        op(name, "sjL", "branchi")
    # Jumps and calls.
    op("j", "L", "jump")
    op("jal", "L", "call")
    op("jr", "s", "ijump")
    op("jalr", "s", "icall")
    # Runtime interface.
    op("hostcall", "i", "host")
    op("trap", "i", "misc")
    op("nop", "", "misc")
    op("sethnd", "s", "misc")  # register access-violation handler

    for code, spec in enumerate(table):
        object.__setattr__(spec, "code", code)
    return table


SPECS: list[OpSpec] = _specs()
SPEC_BY_NAME: dict[str, OpSpec] = {s.name: s for s in SPECS}
SPEC_BY_CODE: dict[int, OpSpec] = {s.code: s for s in SPECS}

#: Branch predicate metadata: opcode prefix -> (python operator key, signed)
BRANCH_PREDS = {
    "beq": ("eq", True), "bne": ("ne", True),
    "blt": ("lt", True), "ble": ("le", True),
    "bgt": ("gt", True), "bge": ("ge", True),
    "bltu": ("lt", False), "bleu": ("le", False),
    "bgtu": ("gt", False), "bgeu": ("ge", False),
}

SET_PREDS = {
    "seq": ("eq", True), "sne": ("ne", True),
    "slt": ("lt", True), "sle": ("le", True),
    "sgt": ("gt", True), "sge": ("ge", True),
    "sltu": ("lt", False), "sleu": ("le", False),
    "sgtu": ("gt", False), "sgeu": ("ge", False),
}


@dataclass
class VMInstr:
    """One OmniVM instruction.

    Register operands are small integers; ``imm`` holds the immediate
    (signed canonical form); ``label`` holds a symbolic code target until
    the linker resolves it into ``imm`` as an absolute byte address.
    """

    op: str
    rd: int = 0
    rs: int = 0
    rt: int = 0
    fd: int = 0
    fs: int = 0
    ft: int = 0
    imm: int = 0
    imm2: int = 0  # branch-immediate compare constant (18-bit signed)
    label: str | None = None

    @property
    def spec(self) -> OpSpec:
        return SPEC_BY_NAME[self.op]

    def __str__(self) -> str:
        spec = self.spec
        parts: list[str] = []
        for ch in spec.fmt:
            if ch == "d":
                parts.append(INT_REG_NAMES[self.rd])
            elif ch == "s":
                parts.append(INT_REG_NAMES[self.rs])
            elif ch == "t":
                parts.append(INT_REG_NAMES[self.rt])
            elif ch == "D":
                parts.append(FP_REG_NAMES[self.fd])
            elif ch == "S":
                parts.append(FP_REG_NAMES[self.fs])
            elif ch == "T":
                parts.append(FP_REG_NAMES[self.ft])
            elif ch == "i":
                parts.append(str(self.imm))
            elif ch == "j":
                parts.append(str(self.imm2))
            elif ch == "L":
                parts.append(self.label if self.label is not None else hex(self.imm))
        return f"{self.op} " + ", ".join(parts) if parts else self.op

    # -- register usage (for verification and translator bookkeeping) ----

    def int_reads(self) -> list[int]:
        spec = self.spec
        reads: list[int] = []
        for ch in spec.fmt:
            if ch == "s":
                reads.append(self.rs)
            elif ch == "t":
                reads.append(self.rt)
        # Indexed stores use rd as the index register (read, not written).
        if spec.kind == "storex" or spec.kind == "fstorex":
            reads.append(self.rd)
        return reads

    def int_writes(self) -> list[int]:
        spec = self.spec
        if spec.kind in ("storex", "fstorex"):
            return []  # rd is an index operand there
        if spec.kind == "call" or spec.kind == "icall":
            return [REG_RA]
        return [self.rd] if "d" in spec.fmt else []

    def fp_reads(self) -> list[int]:
        spec = self.spec
        reads = []
        for ch in spec.fmt:
            if ch == "S":
                reads.append(self.fs)
            elif ch == "T":
                reads.append(self.ft)
        return reads

    def fp_writes(self) -> list[int]:
        return [self.fd] if "D" in self.spec.fmt else []


def make(op: str, **operands) -> VMInstr:
    """Build a :class:`VMInstr`, validating the opcode name."""
    if op not in SPEC_BY_NAME:
        raise KeyError(f"unknown OmniVM opcode {op!r}")
    return VMInstr(op, **operands)
