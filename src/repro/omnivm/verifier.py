"""Load-time verification of OmniVM modules.

Before a mobile module runs (or is translated), the loader checks cheap
structural properties so that a malformed module is rejected outright
rather than mistranslated:

* every instruction decodes to a known opcode with in-range registers
  (guaranteed by the decoder, re-checked here for programmatically built
  modules);
* every direct branch/jump/call target lies inside the code segment and
  is instruction-aligned;
* `hostcall` indices are well-formed;
* the data image fits its segment.

Indirect jumps cannot be checked statically — that is exactly the gap SFI
closes at run time by masking the target register (see
:mod:`repro.sfi.rewrite`).
"""

from __future__ import annotations

from repro import metrics
from repro.errors import VerifyError
from repro.omnivm.isa import INSTR_SIZE, SPEC_BY_NAME
from repro.omnivm.linker import LinkedProgram
from repro.omnivm.memory import CODE_BASE, DEFAULT_SEGMENT_SIZE, DATA_BASE
from repro.runtime import hostapi


def verify_program(program: LinkedProgram) -> None:
    """Raise :class:`VerifyError` if *program* fails load-time checks."""
    with metrics.stage("verify.module"):
        _verify_program(program)
    if metrics.active():
        metrics.count("verify.module.instrs", len(program.instrs))


def _verify_program(program: LinkedProgram) -> None:
    # A per-module dynamic-link translation unit occupies a window deeper
    # in the code segment (base_index > 0) and may name control targets
    # in *other* modules (extern_addrs); both default to the
    # whole-program case.
    base_index = getattr(program, "base_index", 0)
    extern_addrs = getattr(program, "extern_addrs", frozenset())
    code_size = len(program.instrs) * INSTR_SIZE
    if base_index * INSTR_SIZE + code_size > DEFAULT_SEGMENT_SIZE:
        raise VerifyError("code image exceeds the code segment")
    if len(program.data_image) > DEFAULT_SEGMENT_SIZE:
        raise VerifyError("data image exceeds the data segment")
    code_lo = CODE_BASE + base_index * INSTR_SIZE
    code_hi = code_lo + code_size
    segment_hi = CODE_BASE + DEFAULT_SEGMENT_SIZE
    for addr in extern_addrs:
        if not CODE_BASE <= addr < segment_hi or addr % INSTR_SIZE:
            raise VerifyError(f"bad extern target {addr:#x}")
    for index, instr in enumerate(program.instrs):
        spec = SPEC_BY_NAME.get(instr.op)
        if spec is None:
            raise VerifyError(f"instruction {index}: unknown opcode {instr.op!r}")
        for reg in (instr.rd, instr.rs, instr.rt, instr.fd, instr.fs, instr.ft):
            if not 0 <= reg < 16:
                raise VerifyError(f"instruction {index}: register out of range")
        if instr.label is not None:
            raise VerifyError(
                f"instruction {index}: unresolved symbol {instr.label!r}"
            )
        if spec.kind in ("branch", "branchi", "jump", "call"):
            target = instr.imm & 0xFFFFFFFF
            if not code_lo <= target < code_hi and \
                    target not in extern_addrs:
                raise VerifyError(
                    f"instruction {index}: control target {target:#x} "
                    f"outside code segment"
                )
            if target % INSTR_SIZE:
                raise VerifyError(
                    f"instruction {index}: misaligned control target"
                )
        if spec.kind == "host":
            if instr.imm not in hostapi.HOST_FUNCTIONS_BY_INDEX:
                raise VerifyError(
                    f"instruction {index}: bad hostcall index {instr.imm}"
                )
    # The entry point must exist and be sane.
    entry = program.entry_address
    if not code_lo <= entry < code_hi or entry % INSTR_SIZE:
        raise VerifyError(f"bad entry address {entry:#x}")
    # Data relocations were applied by the linker; spot-check symbols point
    # into the module's own segments.
    for name, address in program.symbols.items():
        in_code = CODE_BASE <= address < CODE_BASE + DEFAULT_SEGMENT_SIZE
        in_data = DATA_BASE <= address < DATA_BASE + DEFAULT_SEGMENT_SIZE
        if not (in_code or in_data):
            raise VerifyError(f"symbol {name!r} outside module segments")
    # Multi-module images additionally verify that every cross-module
    # reference lands on an exported symbol (the hook avoids an import
    # cycle with repro.runtime.linker, which defines the image type).
    cross_module = getattr(program, "verify_cross_module", None)
    if cross_module is not None:
        with metrics.stage("verify.cross_module"):
            cross_module()
