"""Load-time verification of OmniVM modules.

Before a mobile module runs (or is translated), the loader checks cheap
structural properties so that a malformed module is rejected outright
rather than mistranslated:

* every instruction decodes to a known opcode with in-range registers
  (guaranteed by the decoder, re-checked here for programmatically built
  modules);
* every direct branch/jump/call target lies inside the code segment and
  is instruction-aligned;
* `hostcall` indices are well-formed;
* the data image fits its segment.

Indirect jumps cannot be checked statically — that is exactly the gap SFI
closes at run time by masking the target register (see
:mod:`repro.sfi.rewrite`).
"""

from __future__ import annotations

from repro import metrics
from repro.errors import VerifyError
from repro.omnivm.isa import INSTR_SIZE, SPEC_BY_NAME
from repro.omnivm.linker import LinkedProgram
from repro.omnivm.memory import CODE_BASE, DEFAULT_SEGMENT_SIZE, DATA_BASE
from repro.runtime import hostapi


def verify_program(program: LinkedProgram) -> None:
    """Raise :class:`VerifyError` if *program* fails load-time checks."""
    with metrics.stage("verify.module"):
        _verify_program(program)
    if metrics.active():
        metrics.count("verify.module.instrs", len(program.instrs))


def _verify_program(program: LinkedProgram) -> None:
    code_size = len(program.instrs) * INSTR_SIZE
    if code_size > DEFAULT_SEGMENT_SIZE:
        raise VerifyError("code image exceeds the code segment")
    if len(program.data_image) > DEFAULT_SEGMENT_SIZE:
        raise VerifyError("data image exceeds the data segment")
    code_lo = CODE_BASE
    code_hi = CODE_BASE + code_size
    for index, instr in enumerate(program.instrs):
        spec = SPEC_BY_NAME.get(instr.op)
        if spec is None:
            raise VerifyError(f"instruction {index}: unknown opcode {instr.op!r}")
        for reg in (instr.rd, instr.rs, instr.rt, instr.fd, instr.fs, instr.ft):
            if not 0 <= reg < 16:
                raise VerifyError(f"instruction {index}: register out of range")
        if instr.label is not None:
            raise VerifyError(
                f"instruction {index}: unresolved symbol {instr.label!r}"
            )
        if spec.kind in ("branch", "branchi", "jump", "call"):
            target = instr.imm & 0xFFFFFFFF
            if not code_lo <= target < code_hi:
                raise VerifyError(
                    f"instruction {index}: control target {target:#x} "
                    f"outside code segment"
                )
            if target % INSTR_SIZE:
                raise VerifyError(
                    f"instruction {index}: misaligned control target"
                )
        if spec.kind == "host":
            if instr.imm not in hostapi.HOST_FUNCTIONS_BY_INDEX:
                raise VerifyError(
                    f"instruction {index}: bad hostcall index {instr.imm}"
                )
    # The entry point must exist and be sane.
    entry = program.entry_address
    if not code_lo <= entry < code_hi or entry % INSTR_SIZE:
        raise VerifyError(f"bad entry address {entry:#x}")
    # Data relocations were applied by the linker; spot-check symbols point
    # into the module's own segments.
    for name, address in program.symbols.items():
        in_code = code_lo <= address < CODE_BASE + DEFAULT_SEGMENT_SIZE
        in_data = DATA_BASE <= address < DATA_BASE + DEFAULT_SEGMENT_SIZE
        if not (in_code or in_data):
            raise VerifyError(f"symbol {name!r} outside module segments")
