"""Binary encoding of OmniVM instructions.

Each instruction encodes to exactly :data:`~repro.omnivm.isa.INSTR_SIZE`
(8) bytes, little-endian:

* **word 0** — ``opcode`` in bits 0–9, then up to three 4-bit register
  fields ``a``/``b``/``c`` in bits 10–13, 14–17, 18–21.  Register fields
  are assigned in the order the opcode's format string lists its register
  operands (integer and FP registers share the field slots; the opcode
  determines the register file).
* **word 1** — the 32-bit immediate (also used for resolved code
  addresses of branches, jumps and calls).

The fixed 8-byte width keeps decoding trivial, makes every code address
8-aligned, and gives SFI a one-instruction alignment mask for indirect
jumps.
"""

from __future__ import annotations

import struct

from repro.errors import EncodingError
from repro.omnivm.isa import INSTR_SIZE, SPEC_BY_CODE, SPEC_BY_NAME, VMInstr
from repro.utils.bits import s32, u32

_REG_FIELD_CHARS = "dstDST"


def _register_operands(instr: VMInstr) -> list[int]:
    values = []
    for ch in instr.spec.fmt:
        if ch == "d":
            values.append(instr.rd)
        elif ch == "s":
            values.append(instr.rs)
        elif ch == "t":
            values.append(instr.rt)
        elif ch == "D":
            values.append(instr.fd)
        elif ch == "S":
            values.append(instr.fs)
        elif ch == "T":
            values.append(instr.ft)
    return values


def encode_instr(instr: VMInstr) -> bytes:
    spec = SPEC_BY_NAME.get(instr.op)
    if spec is None:
        raise EncodingError(f"unknown opcode {instr.op!r}")
    if instr.label is not None:
        raise EncodingError(
            f"cannot encode unresolved label {instr.label!r} in {instr}"
        )
    regs = _register_operands(instr)
    if len(regs) > 3:
        raise EncodingError(f"too many register operands in {instr}")
    word0 = spec.code & 0x3FF
    for slot, value in enumerate(regs):
        if not 0 <= value < 16:
            raise EncodingError(f"register number {value} out of range in {instr}")
        word0 |= (value & 0xF) << (10 + 4 * slot)
    if "j" in spec.fmt:
        # 18-bit signed compare constant in bits 14..31 (one register max).
        if len(regs) > 1:
            raise EncodingError(f"imm2 conflicts with registers in {instr}")
        if not -(1 << 17) <= instr.imm2 < (1 << 17):
            raise EncodingError(
                f"imm2 {instr.imm2} does not fit 18 bits in {instr}"
            )
        word0 |= (instr.imm2 & 0x3FFFF) << 14
    return struct.pack("<II", word0, u32(instr.imm))


def decode_instr(blob: bytes, offset: int = 0) -> VMInstr:
    if len(blob) - offset < INSTR_SIZE:
        raise EncodingError("truncated instruction")
    word0, word1 = struct.unpack_from("<II", blob, offset)
    code = word0 & 0x3FF
    spec = SPEC_BY_CODE.get(code)
    if spec is None:
        raise EncodingError(f"invalid opcode number {code}")
    instr = VMInstr(spec.name)
    slot = 0
    for ch in spec.fmt:
        if ch in _REG_FIELD_CHARS:
            value = (word0 >> (10 + 4 * slot)) & 0xF
            slot += 1
            if ch == "d":
                instr.rd = value
            elif ch == "s":
                instr.rs = value
            elif ch == "t":
                instr.rt = value
            elif ch == "D":
                instr.fd = value
            elif ch == "S":
                instr.fs = value
            elif ch == "T":
                instr.ft = value
    if "j" in spec.fmt:
        raw = (word0 >> 14) & 0x3FFFF
        instr.imm2 = raw - (1 << 18) if raw & (1 << 17) else raw
    instr.imm = s32(word1)
    return instr


def encode_program(instrs: list[VMInstr]) -> bytes:
    """Encode a whole instruction sequence."""
    return b"".join(encode_instr(i) for i in instrs)


def decode_program(blob: bytes) -> list[VMInstr]:
    if len(blob) % INSTR_SIZE != 0:
        raise EncodingError("text section size is not a multiple of 8")
    return [decode_instr(blob, off) for off in range(0, len(blob), INSTR_SIZE)]
