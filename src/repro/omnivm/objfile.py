"""The Omniware object file format (OOF).

An object module is the unit the OmniVM assembler and the compiler back
end produce, and what the linker combines into an executable mobile
module.  It contains:

* a **text** section: OmniVM instructions, with symbolic ``label``
  operands still unresolved (both module-local labels and references to
  other objects' symbols);
* a **data** section: raw initialized bytes plus address relocations;
* a **symbol table**: exported (global) and local definitions, each
  naming a section and offset;
* a **bss** size: zero-initialized space appended after data at link time;
* an **import list**: symbols this module expects some other module to
  export.  The static linker treats them like any other undefined
  reference; the dynamic link-loader (:mod:`repro.runtime.linker`) uses
  them to build the inter-module dependency graph and the per-module
  trampoline table.

Object files serialize to a compact binary form (magic ``OOF1``) so the
test suite can round-trip them and examples can ship them between
"machines" as real mobile code bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import ObjectFormatError
from repro.omnivm.encoding import decode_instr, encode_instr
from repro.omnivm.isa import INSTR_SIZE, VMInstr

MAGIC = b"OOF1"


@dataclass
class SymbolDef:
    """A symbol definition within an object module."""

    name: str
    section: str  # 'text' | 'data' | 'bss'
    offset: int  # bytes from section start (text: instr_index * 8)
    is_global: bool = True


@dataclass
class DataReloc:
    """Patch the 32-bit word at ``offset`` (in the data section) with the
    final address of ``symbol`` plus the addend already stored there."""

    offset: int
    symbol: str


@dataclass
class ObjectModule:
    name: str = "object"
    text: list[VMInstr] = field(default_factory=list)
    data: bytes = b""
    bss_size: int = 0
    symbols: list[SymbolDef] = field(default_factory=list)
    data_relocs: list[DataReloc] = field(default_factory=list)
    imports: list[str] = field(default_factory=list)

    def define(self, name: str, section: str, offset: int,
               is_global: bool = True) -> None:
        self.symbols.append(SymbolDef(name, section, offset, is_global))

    def declare_imports(self) -> None:
        """Record every currently-undefined reference as a declared
        import (idempotent; preserves previously declared names)."""
        merged = set(self.imports) | self.undefined_symbols()
        self.imports = sorted(merged)

    def symbol_map(self) -> dict[str, SymbolDef]:
        return {s.name: s for s in self.symbols}

    def referenced_labels(self) -> set[str]:
        return {i.label for i in self.text if i.label is not None}

    def undefined_symbols(self) -> set[str]:
        defined = {s.name for s in self.symbols}
        refs = self.referenced_labels() | {r.symbol for r in self.data_relocs}
        return {r for r in refs if r not in defined}

    # -- serialization ------------------------------------------------------

    def to_bytes(self) -> bytes:
        out = bytearray()
        out += MAGIC
        out += _pack_str(self.name)
        # Text: count, then per instruction 8 encoded bytes + label string.
        out += struct.pack("<I", len(self.text))
        for instr in self.text:
            label = instr.label
            clone = VMInstr(instr.op, instr.rd, instr.rs, instr.rt,
                            instr.fd, instr.fs, instr.ft, instr.imm,
                            instr.imm2, None)
            out += encode_instr(clone)
            out += _pack_str(label or "")
        out += struct.pack("<I", len(self.data))
        out += self.data
        out += struct.pack("<I", self.bss_size)
        out += struct.pack("<I", len(self.symbols))
        for sym in self.symbols:
            out += _pack_str(sym.name)
            out += _pack_str(sym.section)
            out += struct.pack("<iB", sym.offset, 1 if sym.is_global else 0)
        out += struct.pack("<I", len(self.data_relocs))
        for reloc in self.data_relocs:
            out += struct.pack("<I", reloc.offset)
            out += _pack_str(reloc.symbol)
        # Import list: a trailing section so pre-import blobs (which end
        # exactly after the relocation table) still decode.
        out += struct.pack("<I", len(self.imports))
        for name in self.imports:
            out += _pack_str(name)
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ObjectModule":
        try:
            return cls._from_bytes(blob)
        except (struct.error, IndexError, UnicodeDecodeError) as exc:
            raise ObjectFormatError(f"truncated or corrupt object: {exc}")

    @classmethod
    def _from_bytes(cls, blob: bytes) -> "ObjectModule":
        if blob[:4] != MAGIC:
            raise ObjectFormatError("bad magic: not an OOF object")
        cursor = [4]
        name = _unpack_str(blob, cursor)
        module = cls(name)
        (count,) = struct.unpack_from("<I", blob, cursor[0])
        cursor[0] += 4
        for _ in range(count):
            instr = decode_instr(blob, cursor[0])
            cursor[0] += INSTR_SIZE
            label = _unpack_str(blob, cursor)
            if label:
                instr.label = label
            module.text.append(instr)
        (data_len,) = struct.unpack_from("<I", blob, cursor[0])
        cursor[0] += 4
        module.data = bytes(blob[cursor[0]:cursor[0] + data_len])
        if len(module.data) != data_len:
            raise ObjectFormatError("truncated data section")
        cursor[0] += data_len
        (module.bss_size,) = struct.unpack_from("<I", blob, cursor[0])
        cursor[0] += 4
        (sym_count,) = struct.unpack_from("<I", blob, cursor[0])
        cursor[0] += 4
        for _ in range(sym_count):
            sym_name = _unpack_str(blob, cursor)
            section = _unpack_str(blob, cursor)
            offset, is_global = struct.unpack_from("<iB", blob, cursor[0])
            cursor[0] += 5
            module.symbols.append(
                SymbolDef(sym_name, section, offset, bool(is_global))
            )
        (reloc_count,) = struct.unpack_from("<I", blob, cursor[0])
        cursor[0] += 4
        for _ in range(reloc_count):
            (offset,) = struct.unpack_from("<I", blob, cursor[0])
            cursor[0] += 4
            symbol = _unpack_str(blob, cursor)
            module.data_relocs.append(DataReloc(offset, symbol))
        if cursor[0] < len(blob):  # import list absent in older blobs
            (import_count,) = struct.unpack_from("<I", blob, cursor[0])
            cursor[0] += 4
            for _ in range(import_count):
                module.imports.append(_unpack_str(blob, cursor))
        return module


def _pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ObjectFormatError("string too long")
    return struct.pack("<H", len(raw)) + raw


def _unpack_str(blob: bytes, cursor: list[int]) -> str:
    (length,) = struct.unpack_from("<H", blob, cursor[0])
    cursor[0] += 2
    raw = blob[cursor[0]:cursor[0] + length]
    if len(raw) != length:
        raise ObjectFormatError("truncated string")
    cursor[0] += length
    return raw.decode("utf-8")
