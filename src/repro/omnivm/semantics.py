"""Shared instruction semantics for OmniVM and the target simulators.

The reference interpreter (:mod:`repro.omnivm.interp`) *defines* OmniVM
semantics; the generic target executor (:mod:`repro.targets.base`)
re-implements each instruction over the union vocabulary.  Anything
implemented twice can drift apart twice — and for a mobile-code system
the whole point is that the translated program is observably identical
to the interpreted one.  This module holds the semantics both engines
must share verbatim:

* integer divide/remainder trapping (one error message, one behaviour
  for ``INT32_MIN / -1``);
* floating-point arithmetic trapping (divide by zero, overflow);
* float → integer conversion with a single clamp path (NaN, infinities
  and out-of-range values all clamp the same way in both engines);
* sign/zero extension.

The differential fuzzer (:mod:`repro.difftest`) cross-executes random
programs through both engines; keeping these helpers shared means a bug
here shows up as *matching* wrong behaviour rather than a divergence —
so the helpers are also pinned directly by unit tests.
"""

from __future__ import annotations

from repro.errors import VMRuntimeError
from repro.utils.bits import (
    INT32_MAX,
    INT32_MIN,
    UINT32_MAX,
    div32,
    divu32,
    rem32,
    remu32,
    s8,
    s16,
    u32,
)

#: The one integer division-by-zero message both engines raise.
INT_DIV_ZERO_MSG = "integer division by zero"
#: The one floating-point division-by-zero message both engines raise.
FP_DIV_ZERO_MSG = "floating-point division by zero"
#: The one floating-point overflow message both engines raise.
FP_OVERFLOW_MSG = "floating-point overflow"

#: i32 clamp value for unrepresentable float→int conversions (the
#: "integer indefinite" convention: NaN, ±inf and out-of-range all
#: produce INT32_MIN, as x86 ``cvttsd2si`` does).
F2I_CLAMP = 0x80000000
#: u32 clamp value for unrepresentable float→uint conversions.
F2U_CLAMP = 0

_INT_DIV_FN = {"div": div32, "divu": divu32, "rem": rem32, "remu": remu32}


def int_divide(op: str, a: int, b: int) -> int:
    """``div``/``divu``/``rem``/``remu`` with the shared trap message.

    Division truncates toward zero and the remainder's sign follows the
    dividend (C semantics); ``INT32_MIN / -1`` wraps to ``INT32_MIN``
    and ``INT32_MIN % -1`` is 0 (the two's-complement fixed point).
    """
    try:
        return _INT_DIV_FN[op](a, b)
    except ZeroDivisionError:
        raise VMRuntimeError(INT_DIV_ZERO_MSG) from None


def fp_binop(base: str, a: float, b: float) -> float:
    """FP add/sub/mul/div (width-suffix stripped) with shared traps."""
    try:
        if base == "fadd":
            return a + b
        if base == "fsub":
            return a - b
        if base == "fmul":
            return a * b
        if base == "fdiv":
            if b == 0.0:
                raise VMRuntimeError(FP_DIV_ZERO_MSG)
            return a / b
    except OverflowError:
        raise VMRuntimeError(FP_OVERFLOW_MSG) from None
    raise VMRuntimeError(f"unknown FP op {base!r}")  # pragma: no cover


def fp_unop(base: str, a: float) -> float:
    """FP move/negate/absolute (width-suffix stripped).

    The caller applies single-precision rounding for the ``s`` variants
    — including ``fmovs``, which narrows a double to the nearest f32
    exactly like the arithmetic ops do.
    """
    if base == "fmov":
        return a
    if base == "fneg":
        return -a
    if base == "fabs":
        return abs(a)
    raise VMRuntimeError(f"unknown FP op {base!r}")  # pragma: no cover


def f_to_i32(value: float) -> int:
    """Truncate a float toward zero into an i32 register encoding.

    One clamp path: NaN, ±inf, and any value outside
    ``[INT32_MIN, INT32_MAX]`` produce :data:`F2I_CLAMP`.
    """
    try:
        truncated = int(value)
    except (OverflowError, ValueError):
        return F2I_CLAMP
    if not INT32_MIN <= truncated <= INT32_MAX:
        return F2I_CLAMP
    return u32(truncated)


def f_to_u32(value: float) -> int:
    """Truncate a float toward zero into a u32 register encoding.

    One clamp path: NaN, ±inf, and any value outside
    ``[0, UINT32_MAX]`` (after truncation toward zero, so values in
    ``(-1, 0)`` are representable as 0) produce :data:`F2U_CLAMP`.
    """
    try:
        truncated = int(value)
    except (OverflowError, ValueError):
        return F2U_CLAMP
    if not 0 <= truncated <= UINT32_MAX:
        return F2U_CLAMP
    return truncated


def extend(op: str, value: int) -> int:
    """``sext8``/``sext16``/``zext8``/``zext16`` on a register value."""
    if op == "sext8":
        return u32(s8(value))
    if op == "zext8":
        return value & 0xFF
    if op == "sext16":
        return u32(s16(value))
    if op == "zext16":
        return value & 0xFFFF
    raise VMRuntimeError(f"unknown extension {op!r}")  # pragma: no cover
