"""Threaded-code execution engine for OmniVM.

The reference interpreter (:mod:`repro.omnivm.interp`) re-decodes every
dynamic instruction: one trip through a long ``if``/``elif`` chain, one
``_PRED_FN``/shape-table lookup, one immediate normalization — per step.
This module moves all of that to **load time**, the same place the
paper puts translation cost:

* **predecode** — each :class:`~repro.omnivm.isa.VMInstr` is compiled
  once into a bound Python closure: operands are resolved to list
  indexes, immediate forms are folded to their register-op equivalents
  (``addi`` becomes an ``add`` against a pre-normalized constant), and
  the predicate/shape tables are consulted once.  The closures live in
  a per-program dispatch array indexed by pc;
* **superinstruction fusion** — the dominant dynamic pairs exposed by
  the opcode-count instrumentation on the four SPEC workloads
  (``mov``/``li`` shuffles, ``addi``/``slli``+``mov`` address
  arithmetic, ``lw``+``lw`` / ``sw``+``sw`` block moves,
  ``li``+indexed-load, ``addi``/``li``+``jr`` returns, and
  ``lw``+compare-and-branch) are emitted as single fused closures;
* **basic-block batching** — straight-line runs execute without
  re-entering the dispatch loop; ``instret`` and the fuel check are
  charged once per block, so a fuel cut (including the service
  watchdog's asynchronous ``fuel = -1``) lands at the next block
  boundary, at most one block length late.

Observable semantics are pinned to the reference interpreter: the
difftest fixed-seed corpus must be bit-exact between the two engines
(registers, memory digest, ``instret``, outcome kind and detail).  The
one documented relaxation is fuel granularity, above.

A :class:`ThreadedProgram` binds no VM state — closures receive the
register files and memory as arguments — so one predecoded artifact is
shared by every :class:`ThreadedVM` running the same program and may be
cached in the :class:`~repro.cache.TranslationCache` (in memory only;
closures do not persist to disk).
"""

from __future__ import annotations

import time

from repro import metrics
from repro.errors import (
    AccessViolation,
    FuelExhausted,
    VMRuntimeError,
    VMTrap,
)
from repro.omnivm import semantics
from repro.omnivm.interp import (
    _IMM_TO_REG_OP,
    _LOAD_SHAPE,
    _STORE_SIZE,
    OmniVM,
)
from repro.omnivm.isa import BRANCH_PREDS, INSTR_SIZE, REG_RA, SET_PREDS
from repro.omnivm.memory import CODE_BASE
from repro.utils.bits import round_f32, s32, u32

_M = 0xFFFFFFFF
_SIGN = 0x80000000
_WRAP = 0x100000000

__all__ = ["ThreadedProgram", "ThreadedVM", "predecode_program"]


# ---------------------------------------------------------------------------
# straight-line (body) closures: fn(regs, fregs, memory) -> None
# ---------------------------------------------------------------------------

def _compile_alu(op, rd, a_get, b_get):
    """Shared reg-reg / folded-immediate ALU compiler.

    ``a_get``/``b_get`` are either register indexes (int) or constants
    (("const", value)); the emitted closure reads them accordingly.
    """
    # Specialize the operand access pattern: (reg, reg) or (reg, const).
    # Only these two shapes occur (immediates are always the second
    # operand after folding).
    rs = a_get
    const = b_get[1] if isinstance(b_get, tuple) else None
    rt = b_get if const is None else None

    if op in SET_PREDS:
        pred, signed = SET_PREDS[op]
        return _compile_set(pred, signed, rd, rs, rt, const)

    if const is None:
        if op == "add":
            def fn(regs, fregs, memory):
                regs[rd] = (regs[rs] + regs[rt]) & _M
        elif op == "sub":
            def fn(regs, fregs, memory):
                regs[rd] = (regs[rs] - regs[rt]) & _M
        elif op == "mul":
            def fn(regs, fregs, memory):
                regs[rd] = (regs[rs] * regs[rt]) & _M
        elif op == "and":
            def fn(regs, fregs, memory):
                regs[rd] = regs[rs] & regs[rt]
        elif op == "or":
            def fn(regs, fregs, memory):
                regs[rd] = regs[rs] | regs[rt]
        elif op == "xor":
            def fn(regs, fregs, memory):
                regs[rd] = regs[rs] ^ regs[rt]
        elif op == "sll":
            def fn(regs, fregs, memory):
                regs[rd] = (regs[rs] << (regs[rt] & 31)) & _M
        elif op == "srl":
            def fn(regs, fregs, memory):
                regs[rd] = regs[rs] >> (regs[rt] & 31)
        elif op == "sra":
            def fn(regs, fregs, memory):
                a = regs[rs]
                if a & _SIGN:
                    a -= _WRAP
                regs[rd] = (a >> (regs[rt] & 31)) & _M
        else:  # pragma: no cover
            raise VMRuntimeError(f"unknown ALU op {op!r}")
        return fn
    # folded-immediate forms
    if op == "add":
        def fn(regs, fregs, memory):
            regs[rd] = (regs[rs] + const) & _M
    elif op == "mul":
        def fn(regs, fregs, memory):
            regs[rd] = (regs[rs] * const) & _M
    elif op == "and":
        def fn(regs, fregs, memory):
            regs[rd] = regs[rs] & const
    elif op == "or":
        def fn(regs, fregs, memory):
            regs[rd] = regs[rs] | const
    elif op == "xor":
        def fn(regs, fregs, memory):
            regs[rd] = regs[rs] ^ const
    elif op == "sll":
        sh = const & 31

        def fn(regs, fregs, memory):
            regs[rd] = (regs[rs] << sh) & _M
    elif op == "srl":
        sh = const & 31

        def fn(regs, fregs, memory):
            regs[rd] = regs[rs] >> sh
    elif op == "sra":
        sh = const & 31

        def fn(regs, fregs, memory):
            a = regs[rs]
            if a & _SIGN:
                a -= _WRAP
            regs[rd] = (a >> sh) & _M
    else:  # pragma: no cover
        raise VMRuntimeError(f"unknown ALU op {op!r}")
    return fn


def _compile_set(pred, signed, rd, rs, rt, const):
    """Compare-to-register closures (reg/reg and reg/const forms)."""
    if const is None:
        if pred == "eq":
            def fn(regs, fregs, memory):
                regs[rd] = 1 if regs[rs] == regs[rt] else 0
        elif pred == "ne":
            def fn(regs, fregs, memory):
                regs[rd] = 1 if regs[rs] != regs[rt] else 0
        elif signed:
            if pred == "lt":
                def fn(regs, fregs, memory):
                    a = regs[rs]
                    b = regs[rt]
                    if a & _SIGN:
                        a -= _WRAP
                    if b & _SIGN:
                        b -= _WRAP
                    regs[rd] = 1 if a < b else 0
            elif pred == "le":
                def fn(regs, fregs, memory):
                    a = regs[rs]
                    b = regs[rt]
                    if a & _SIGN:
                        a -= _WRAP
                    if b & _SIGN:
                        b -= _WRAP
                    regs[rd] = 1 if a <= b else 0
            elif pred == "gt":
                def fn(regs, fregs, memory):
                    a = regs[rs]
                    b = regs[rt]
                    if a & _SIGN:
                        a -= _WRAP
                    if b & _SIGN:
                        b -= _WRAP
                    regs[rd] = 1 if a > b else 0
            else:  # ge
                def fn(regs, fregs, memory):
                    a = regs[rs]
                    b = regs[rt]
                    if a & _SIGN:
                        a -= _WRAP
                    if b & _SIGN:
                        b -= _WRAP
                    regs[rd] = 1 if a >= b else 0
        else:
            if pred == "lt":
                def fn(regs, fregs, memory):
                    regs[rd] = 1 if regs[rs] < regs[rt] else 0
            elif pred == "le":
                def fn(regs, fregs, memory):
                    regs[rd] = 1 if regs[rs] <= regs[rt] else 0
            elif pred == "gt":
                def fn(regs, fregs, memory):
                    regs[rd] = 1 if regs[rs] > regs[rt] else 0
            else:  # ge
                def fn(regs, fregs, memory):
                    regs[rd] = 1 if regs[rs] >= regs[rt] else 0
        return fn
    # constant second operand, pre-normalized to the legacy convention:
    # unsigned compares see u32(imm); signed compares see s32(u32(imm)).
    b = s32(const) if signed else const
    if pred == "eq":
        def fn(regs, fregs, memory):
            regs[rd] = 1 if regs[rs] == const else 0
        return fn
    if pred == "ne":
        def fn(regs, fregs, memory):
            regs[rd] = 1 if regs[rs] != const else 0
        return fn
    if signed:
        if pred == "lt":
            def fn(regs, fregs, memory):
                a = regs[rs]
                if a & _SIGN:
                    a -= _WRAP
                regs[rd] = 1 if a < b else 0
        elif pred == "le":
            def fn(regs, fregs, memory):
                a = regs[rs]
                if a & _SIGN:
                    a -= _WRAP
                regs[rd] = 1 if a <= b else 0
        elif pred == "gt":
            def fn(regs, fregs, memory):
                a = regs[rs]
                if a & _SIGN:
                    a -= _WRAP
                regs[rd] = 1 if a > b else 0
        else:  # ge
            def fn(regs, fregs, memory):
                a = regs[rs]
                if a & _SIGN:
                    a -= _WRAP
                regs[rd] = 1 if a >= b else 0
    else:
        if pred == "lt":
            def fn(regs, fregs, memory):
                regs[rd] = 1 if regs[rs] < b else 0
        elif pred == "le":
            def fn(regs, fregs, memory):
                regs[rd] = 1 if regs[rs] <= b else 0
        elif pred == "gt":
            def fn(regs, fregs, memory):
                regs[rd] = 1 if regs[rs] > b else 0
        else:  # ge
            def fn(regs, fregs, memory):
                regs[rd] = 1 if regs[rs] >= b else 0
    return fn


def _compile_load(instr, pc):
    op = instr.op
    rd, rs, rt = instr.rd, instr.rs, instr.rt
    indexed = instr.spec.kind == "loadx"
    size, signed = _LOAD_SHAPE[op[:-1] if indexed else op]
    immu = u32(instr.imm)
    if size == 4:
        if indexed:
            def fn(regs, fregs, memory):
                try:
                    regs[rd] = memory.load_u32((regs[rs] + regs[rt]) & _M)
                except AccessViolation as violation:
                    violation.fault_pc = pc
                    raise
        else:
            def fn(regs, fregs, memory):
                try:
                    regs[rd] = memory.load_u32((regs[rs] + immu) & _M)
                except AccessViolation as violation:
                    violation.fault_pc = pc
                    raise
        return fn
    if indexed:
        def fn(regs, fregs, memory):
            try:
                regs[rd] = memory.load(
                    (regs[rs] + regs[rt]) & _M, size, signed) & _M
            except AccessViolation as violation:
                violation.fault_pc = pc
                raise
    else:
        def fn(regs, fregs, memory):
            try:
                regs[rd] = memory.load(
                    (regs[rs] + immu) & _M, size, signed) & _M
            except AccessViolation as violation:
                violation.fault_pc = pc
                raise
    return fn


def _compile_store(instr, pc):
    op = instr.op
    rd, rs, rt = instr.rd, instr.rs, instr.rt
    indexed = instr.spec.kind == "storex"
    size = _STORE_SIZE[op[:-1] if indexed else op]
    immu = u32(instr.imm)
    if size == 4:
        if indexed:
            def fn(regs, fregs, memory):
                try:
                    memory.store_u32((regs[rs] + regs[rd]) & _M, regs[rt])
                except AccessViolation as violation:
                    violation.fault_pc = pc
                    raise
        else:
            def fn(regs, fregs, memory):
                try:
                    memory.store_u32((regs[rs] + immu) & _M, regs[rt])
                except AccessViolation as violation:
                    violation.fault_pc = pc
                    raise
        return fn
    if indexed:
        def fn(regs, fregs, memory):
            try:
                memory.store((regs[rs] + regs[rd]) & _M, size, regs[rt])
            except AccessViolation as violation:
                violation.fault_pc = pc
                raise
    else:
        def fn(regs, fregs, memory):
            try:
                memory.store((regs[rs] + immu) & _M, size, regs[rt])
            except AccessViolation as violation:
                violation.fault_pc = pc
                raise
    return fn


def _compile_fmem(instr, pc):
    op = instr.op
    kind = instr.spec.kind
    rd, rs, rt = instr.rd, instr.rs, instr.rt
    fd, ft = instr.fd, instr.ft
    immu = u32(instr.imm)
    indexed = kind in ("floadx", "fstorex")
    single = op.startswith(("lfs", "sfs"))
    if kind in ("fload", "floadx"):
        if indexed:
            def addr(regs):
                return (regs[rs] + regs[rt]) & _M
        else:
            def addr(regs):
                return (regs[rs] + immu) & _M
        if single:
            def fn(regs, fregs, memory):
                try:
                    fregs[fd] = memory.load_f32(addr(regs))
                except AccessViolation as violation:
                    violation.fault_pc = pc
                    raise
        else:
            def fn(regs, fregs, memory):
                try:
                    fregs[fd] = memory.load_f64(addr(regs))
                except AccessViolation as violation:
                    violation.fault_pc = pc
                    raise
        return fn
    # fstore / fstorex: the index register is rd (see the ISA format).
    if indexed:
        def addr(regs):
            return (regs[rs] + regs[rd]) & _M
    else:
        def addr(regs):
            return (regs[rs] + immu) & _M
    if single:
        def fn(regs, fregs, memory):
            try:
                memory.store_f32(addr(regs), fregs[ft])
            except AccessViolation as violation:
                violation.fault_pc = pc
                raise
    else:
        def fn(regs, fregs, memory):
            try:
                memory.store_f64(addr(regs), fregs[ft])
            except AccessViolation as violation:
                violation.fault_pc = pc
                raise
    return fn


def _compile_falu(instr):
    op = instr.op
    fd, fs, ft = instr.fd, instr.fs, instr.ft
    base = op[:-1]
    single = op in ("fadds", "fsubs", "fmuls", "fdivs",
                    "fnegs", "fabss", "fmovs")
    if op in ("fmovs", "fmovd", "fnegs", "fnegd", "fabss", "fabsd"):
        fp_unop = semantics.fp_unop
        if single:
            def fn(regs, fregs, memory):
                fregs[fd] = round_f32(fp_unop(base, fregs[fs]))
        else:
            def fn(regs, fregs, memory):
                fregs[fd] = fp_unop(base, fregs[fs])
        return fn
    fp_binop = semantics.fp_binop
    if single:
        def fn(regs, fregs, memory):
            fregs[fd] = round_f32(fp_binop(base, fregs[fs], fregs[ft]))
    else:
        def fn(regs, fregs, memory):
            fregs[fd] = fp_binop(base, fregs[fs], fregs[ft])
    return fn


def _compile_fcmp(instr):
    op = instr.op
    rd, fs, ft = instr.rd, instr.fs, instr.ft
    pred = op[:-1]
    if pred == "fceq":
        def fn(regs, fregs, memory):
            regs[rd] = 1 if fregs[fs] == fregs[ft] else 0
    elif pred == "fclt":
        def fn(regs, fregs, memory):
            regs[rd] = 1 if fregs[fs] < fregs[ft] else 0
    else:  # fcle
        def fn(regs, fregs, memory):
            regs[rd] = 1 if fregs[fs] <= fregs[ft] else 0
    return fn


def _compile_cvt(instr):
    op = instr.op
    rd, rs = instr.rd, instr.rs
    fd, fs = instr.fd, instr.fs
    f_to_i32 = semantics.f_to_i32
    f_to_u32 = semantics.f_to_u32
    if op == "cvtdw":
        def fn(regs, fregs, memory):
            a = regs[rs]
            fregs[fd] = float(a - _WRAP if a & _SIGN else a)
    elif op == "cvtsw":
        def fn(regs, fregs, memory):
            a = regs[rs]
            fregs[fd] = round_f32(float(a - _WRAP if a & _SIGN else a))
    elif op == "cvtdwu":
        def fn(regs, fregs, memory):
            fregs[fd] = float(regs[rs])
    elif op == "cvtswu":
        def fn(regs, fregs, memory):
            fregs[fd] = round_f32(float(regs[rs]))
    elif op in ("cvtwd", "cvtws"):
        def fn(regs, fregs, memory):
            regs[rd] = f_to_i32(fregs[fs])
    elif op in ("cvtwud", "cvtwus"):
        def fn(regs, fregs, memory):
            regs[rd] = f_to_u32(fregs[fs])
    elif op == "cvtds":
        def fn(regs, fregs, memory):
            fregs[fd] = fregs[fs]
    elif op == "cvtsd":
        def fn(regs, fregs, memory):
            fregs[fd] = round_f32(fregs[fs])
    else:  # pragma: no cover
        raise VMRuntimeError(f"unknown conversion {op!r}")
    return fn


def _compile_body(instr, pc):
    """Compile one straight-line instruction; None for pure ``nop``."""
    op = instr.op
    kind = instr.spec.kind
    rd, rs = instr.rd, instr.rs

    if kind == "alu":
        if op in ("div", "divu", "rem", "remu"):
            rt = instr.rt
            int_divide = semantics.int_divide

            def fn(regs, fregs, memory):
                try:
                    regs[rd] = int_divide(op, regs[rs], regs[rt])
                except VMRuntimeError as err:
                    err.fault_pc = pc
                    raise
            return fn
        return _compile_alu(op, rd, rs, instr.rt)
    if kind == "alui":
        return _compile_alu(_IMM_TO_REG_OP[op], rd, rs,
                            ("const", u32(instr.imm)))
    if kind == "li":
        value = u32(instr.imm)

        def fn(regs, fregs, memory):
            regs[rd] = value
        return fn
    if kind == "mov":
        def fn(regs, fregs, memory):
            regs[rd] = regs[rs]
        return fn
    if kind in ("load", "loadx"):
        return _compile_load(instr, pc)
    if kind in ("store", "storex"):
        return _compile_store(instr, pc)
    if kind in ("fload", "floadx", "fstore", "fstorex"):
        return _compile_fmem(instr, pc)
    if kind == "falu":
        return _compile_falu(instr)
    if kind == "fcmp":
        return _compile_fcmp(instr)
    if kind == "cvt":
        return _compile_cvt(instr)
    if kind == "ext":
        extend = semantics.extend

        def fn(regs, fregs, memory):
            regs[rd] = extend(op, regs[rs])
        return fn
    if op == "nop":
        return None
    raise VMRuntimeError(f"unimplemented opcode {op!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# terminator closures: fn(vm, state, regs) -> next pc
# ---------------------------------------------------------------------------

_TERM_KINDS = frozenset(
    ("branch", "branchi", "jump", "call", "ijump", "icall", "host")
)


def _compile_branch(pred, signed, a_reg, b_reg, b_const, target, next_pc):
    """Compare-and-branch closures (reg/reg and reg/const forms)."""
    rs = a_reg
    rt = b_reg
    if b_const is None:
        if pred == "eq":
            def fn(vm, state, regs):
                return target if regs[rs] == regs[rt] else next_pc
        elif pred == "ne":
            def fn(vm, state, regs):
                return target if regs[rs] != regs[rt] else next_pc
        elif signed:
            if pred == "lt":
                def fn(vm, state, regs):
                    a = regs[rs]
                    b = regs[rt]
                    if a & _SIGN:
                        a -= _WRAP
                    if b & _SIGN:
                        b -= _WRAP
                    return target if a < b else next_pc
            elif pred == "le":
                def fn(vm, state, regs):
                    a = regs[rs]
                    b = regs[rt]
                    if a & _SIGN:
                        a -= _WRAP
                    if b & _SIGN:
                        b -= _WRAP
                    return target if a <= b else next_pc
            elif pred == "gt":
                def fn(vm, state, regs):
                    a = regs[rs]
                    b = regs[rt]
                    if a & _SIGN:
                        a -= _WRAP
                    if b & _SIGN:
                        b -= _WRAP
                    return target if a > b else next_pc
            else:  # ge
                def fn(vm, state, regs):
                    a = regs[rs]
                    b = regs[rt]
                    if a & _SIGN:
                        a -= _WRAP
                    if b & _SIGN:
                        b -= _WRAP
                    return target if a >= b else next_pc
        else:
            if pred == "lt":
                def fn(vm, state, regs):
                    return target if regs[rs] < regs[rt] else next_pc
            elif pred == "le":
                def fn(vm, state, regs):
                    return target if regs[rs] <= regs[rt] else next_pc
            elif pred == "gt":
                def fn(vm, state, regs):
                    return target if regs[rs] > regs[rt] else next_pc
            else:  # ge
                def fn(vm, state, regs):
                    return target if regs[rs] >= regs[rt] else next_pc
        return fn
    b = b_const
    if pred in ("eq", "ne"):
        # The legacy engine compares the raw immediate against the
        # (signed-decoded) register; a constant outside the comparable
        # range can never match, otherwise the comparison folds to a
        # masked 32-bit equality.
        lo, hi = (-(1 << 31), 1 << 31) if signed else (0, 1 << 32)
        if lo <= b < hi:
            bm = b & _M
            if pred == "eq":
                def fn(vm, state, regs):
                    return target if regs[rs] == bm else next_pc
            else:
                def fn(vm, state, regs):
                    return target if regs[rs] != bm else next_pc
        else:
            taken = target if pred == "ne" else next_pc

            def fn(vm, state, regs):
                return taken
        return fn
    if signed:
        if pred == "lt":
            def fn(vm, state, regs):
                a = regs[rs]
                if a & _SIGN:
                    a -= _WRAP
                return target if a < b else next_pc
        elif pred == "le":
            def fn(vm, state, regs):
                a = regs[rs]
                if a & _SIGN:
                    a -= _WRAP
                return target if a <= b else next_pc
        elif pred == "gt":
            def fn(vm, state, regs):
                a = regs[rs]
                if a & _SIGN:
                    a -= _WRAP
                return target if a > b else next_pc
        else:  # ge
            def fn(vm, state, regs):
                a = regs[rs]
                if a & _SIGN:
                    a -= _WRAP
                return target if a >= b else next_pc
    else:
        if pred == "lt":
            def fn(vm, state, regs):
                return target if regs[rs] < b else next_pc
        elif pred == "le":
            def fn(vm, state, regs):
                return target if regs[rs] <= b else next_pc
        elif pred == "gt":
            def fn(vm, state, regs):
                return target if regs[rs] > b else next_pc
        else:  # ge
            def fn(vm, state, regs):
                return target if regs[rs] >= b else next_pc
    return fn


def _compile_term(instr, pc):
    op = instr.op
    kind = instr.spec.kind
    rs = instr.rs
    next_pc = pc + INSTR_SIZE

    if kind == "branch":
        pred, signed = BRANCH_PREDS[op]
        return _compile_branch(pred, signed, rs, instr.rt, None,
                               u32(instr.imm), next_pc)
    if kind == "branchi":
        pred, signed = BRANCH_PREDS[op[:-1]]
        b = instr.imm2 if signed else u32(instr.imm2)
        return _compile_branch(pred, signed, rs, None, b,
                               u32(instr.imm), next_pc)
    if kind == "jump":
        target = u32(instr.imm)

        def fn(vm, state, regs):
            return target
        return fn
    if kind == "call":
        target = u32(instr.imm)

        def fn(vm, state, regs):
            regs[REG_RA] = next_pc
            return target
        return fn
    if kind == "ijump":
        def fn(vm, state, regs):
            return regs[rs]
        return fn
    if kind == "icall":
        def fn(vm, state, regs):
            regs[REG_RA] = next_pc
            return regs[rs]
        return fn
    if kind == "host":
        index = instr.imm

        def fn(vm, state, regs):
            hostcall = vm.hostcall
            if hostcall is None:
                raise VMRuntimeError(
                    "module made a hostcall but no host is attached")
            hostcall(vm, index)
            return next_pc
        return fn
    if op == "trap":
        message = f"module trap {instr.imm}"
        code = instr.imm

        def fn(vm, state, regs):
            raise VMTrap(message, code)
        return fn
    if op == "sethnd":
        def fn(vm, state, regs):
            state.handler = regs[rs]
            return next_pc
        return fn
    raise VMRuntimeError(f"unimplemented opcode {op!r}")  # pragma: no cover


def _compile_step(instr, pc):
    """Predecode one instruction: (is_terminator, closure)."""
    op = instr.op
    if instr.spec.kind in _TERM_KINDS or op in ("trap", "sethnd"):
        return (True, _compile_term(instr, pc))
    return (False, _compile_body(instr, pc))


# ---------------------------------------------------------------------------
# superinstruction fusion
# ---------------------------------------------------------------------------
#
# Pair selection is grounded in the dynamic pair frequencies the
# opcode-count instrumentation reports on the four SPEC workloads (li,
# compress, alvinn, eqntott); see DESIGN.md.  Each fused closure performs
# both effects in exact sequential order, so register aliasing between
# the halves behaves identically to unfused execution, and each memory
# half annotates faults with its own pc so block fault accounting stays
# precise.

def _fuse_mov_mov(i1, i2, pc1, pc2):
    d1, s1, d2, s2 = i1.rd, i1.rs, i2.rd, i2.rs

    def fn(regs, fregs, memory):
        regs[d1] = regs[s1]
        regs[d2] = regs[s2]
    return fn


def _fuse_mov_li(i1, i2, pc1, pc2):
    d1, s1, d2 = i1.rd, i1.rs, i2.rd
    c2 = u32(i2.imm)

    def fn(regs, fregs, memory):
        regs[d1] = regs[s1]
        regs[d2] = c2
    return fn


def _fuse_li_mov(i1, i2, pc1, pc2):
    d1, d2, s2 = i1.rd, i2.rd, i2.rs
    c1 = u32(i1.imm)

    def fn(regs, fregs, memory):
        regs[d1] = c1
        regs[d2] = regs[s2]
    return fn


def _fuse_addi_mov(i1, i2, pc1, pc2):
    d1, s1, d2, s2 = i1.rd, i1.rs, i2.rd, i2.rs
    c1 = u32(i1.imm)

    def fn(regs, fregs, memory):
        regs[d1] = (regs[s1] + c1) & _M
        regs[d2] = regs[s2]
    return fn


def _fuse_slli_mov(i1, i2, pc1, pc2):
    d1, s1, d2, s2 = i1.rd, i1.rs, i2.rd, i2.rs
    sh = u32(i1.imm) & 31

    def fn(regs, fregs, memory):
        regs[d1] = (regs[s1] << sh) & _M
        regs[d2] = regs[s2]
    return fn


def _fuse_lw_lw(i1, i2, pc1, pc2):
    d1, s1, d2, s2 = i1.rd, i1.rs, i2.rd, i2.rs
    c1, c2 = u32(i1.imm), u32(i2.imm)

    def fn(regs, fregs, memory):
        try:
            regs[d1] = memory.load_u32((regs[s1] + c1) & _M)
        except AccessViolation as violation:
            violation.fault_pc = pc1
            raise
        try:
            regs[d2] = memory.load_u32((regs[s2] + c2) & _M)
        except AccessViolation as violation:
            violation.fault_pc = pc2
            raise
    return fn


def _fuse_lw_addi(i1, i2, pc1, pc2):
    d1, s1, d2, s2 = i1.rd, i1.rs, i2.rd, i2.rs
    c1, c2 = u32(i1.imm), u32(i2.imm)

    def fn(regs, fregs, memory):
        try:
            regs[d1] = memory.load_u32((regs[s1] + c1) & _M)
        except AccessViolation as violation:
            violation.fault_pc = pc1
            raise
        regs[d2] = (regs[s2] + c2) & _M
    return fn


def _fuse_addi_lw(i1, i2, pc1, pc2):
    d1, s1, d2, s2 = i1.rd, i1.rs, i2.rd, i2.rs
    c1, c2 = u32(i1.imm), u32(i2.imm)

    def fn(regs, fregs, memory):
        regs[d1] = (regs[s1] + c1) & _M
        try:
            regs[d2] = memory.load_u32((regs[s2] + c2) & _M)
        except AccessViolation as violation:
            violation.fault_pc = pc2
            raise
    return fn


def _fuse_li_lw(i1, i2, pc1, pc2):
    d1, d2, s2 = i1.rd, i2.rd, i2.rs
    c1, c2 = u32(i1.imm), u32(i2.imm)

    def fn(regs, fregs, memory):
        regs[d1] = c1
        try:
            regs[d2] = memory.load_u32((regs[s2] + c2) & _M)
        except AccessViolation as violation:
            violation.fault_pc = pc2
            raise
    return fn


def _fuse_li_lwx(i1, i2, pc1, pc2):
    d1, d2, s2, t2 = i1.rd, i2.rd, i2.rs, i2.rt
    c1 = u32(i1.imm)

    def fn(regs, fregs, memory):
        regs[d1] = c1
        try:
            regs[d2] = memory.load_u32((regs[s2] + regs[t2]) & _M)
        except AccessViolation as violation:
            violation.fault_pc = pc2
            raise
    return fn


def _fuse_sw_sw(i1, i2, pc1, pc2):
    s1, t1, s2, t2 = i1.rs, i1.rt, i2.rs, i2.rt
    c1, c2 = u32(i1.imm), u32(i2.imm)

    def fn(regs, fregs, memory):
        try:
            memory.store_u32((regs[s1] + c1) & _M, regs[t1])
        except AccessViolation as violation:
            violation.fault_pc = pc1
            raise
        try:
            memory.store_u32((regs[s2] + c2) & _M, regs[t2])
        except AccessViolation as violation:
            violation.fault_pc = pc2
            raise
    return fn


def _fuse_addi_sw(i1, i2, pc1, pc2):
    d1, s1, s2, t2 = i1.rd, i1.rs, i2.rs, i2.rt
    c1, c2 = u32(i1.imm), u32(i2.imm)

    def fn(regs, fregs, memory):
        regs[d1] = (regs[s1] + c1) & _M
        try:
            memory.store_u32((regs[s2] + c2) & _M, regs[t2])
        except AccessViolation as violation:
            violation.fault_pc = pc2
            raise
    return fn


_BODY_FUSE = {
    ("mov", "mov"): _fuse_mov_mov,
    ("mov", "li"): _fuse_mov_li,
    ("li", "mov"): _fuse_li_mov,
    ("addi", "mov"): _fuse_addi_mov,
    ("slli", "mov"): _fuse_slli_mov,
    ("lw", "lw"): _fuse_lw_lw,
    ("lw", "addi"): _fuse_lw_addi,
    ("addi", "lw"): _fuse_addi_lw,
    ("li", "lw"): _fuse_li_lw,
    ("li", "lwx"): _fuse_li_lwx,
    ("sw", "sw"): _fuse_sw_sw,
    ("addi", "sw"): _fuse_addi_sw,
}


def _fuse_addi_jr(i1, i2, pc1, pc2):
    d1, s1, s2 = i1.rd, i1.rs, i2.rs
    c1 = u32(i1.imm)

    def fn(vm, state, regs):
        regs[d1] = (regs[s1] + c1) & _M
        return regs[s2]
    return fn


def _fuse_li_jr(i1, i2, pc1, pc2):
    d1, s2 = i1.rd, i2.rs
    c1 = u32(i1.imm)

    def fn(vm, state, regs):
        regs[d1] = c1
        return regs[s2]
    return fn


def _fuse_lw_branchi(i1, i2, pc1, pc2):
    d1, s1 = i1.rd, i1.rs
    c1 = u32(i1.imm)
    branch = _compile_term(i2, pc2)

    def fn(vm, state, regs):
        try:
            regs[d1] = vm.memory.load_u32((regs[s1] + c1) & _M)
        except AccessViolation as violation:
            violation.fault_pc = pc1
            raise
        return branch(vm, state, regs)
    return fn


_TERM_FUSE = {
    ("addi", "jr"): _fuse_addi_jr,
    ("li", "jr"): _fuse_li_jr,
}
for _b in ("beqi", "bnei", "blti", "blei", "bgti", "bgei",
           "bltui", "bleui", "bgtui", "bgeui"):
    _TERM_FUSE[("lw", _b)] = _fuse_lw_branchi
del _b


# ---------------------------------------------------------------------------
# predecoded program + block cache
# ---------------------------------------------------------------------------

class ThreadedProgram:
    """Predecoded form of one linked program.

    ``steps`` is the per-pc dispatch array of bound closures.  ``blocks``
    memoizes basic blocks lazily: any 8-aligned code address can become a
    block entry (indirect jumps and the violation handler land anywhere),
    so blocks are built on first dispatch rather than by static CFG
    discovery.  The artifact holds no VM state and is safely shared
    between VM instances and threads — concurrent block construction for
    the same entry produces identical tuples and the final list store is
    atomic.
    """

    __slots__ = ("instrs", "steps", "blocks", "length")

    def __init__(self, program):
        instrs = program.instrs
        self.instrs = instrs
        self.length = len(instrs)
        self.steps = [
            _compile_step(instr, CODE_BASE + i * INSTR_SIZE)
            for i, instr in enumerate(instrs)
        ]
        self.blocks: list[tuple | None] = [None] * len(instrs)

    def build_block(self, index):
        """Build (and memoize) the basic block entered at *index*.

        A block is ``(body, body_count, term, term_pc, term_count,
        fused)``: a tuple of straight-line closures, the number of
        instructions they cover, the terminator closure (None when the
        block falls off the end of the code segment), the terminator's
        pc, the number of instructions the terminator covers (2 for a
        fused terminator pair), and the number of fused pairs.
        """
        instrs = self.instrs
        steps = self.steps
        n = self.length
        body = []
        body_count = 0
        fused = 0
        term = None
        term_pc = CODE_BASE + n * INSTR_SIZE
        term_count = 0
        i = index
        while i < n:
            pc = CODE_BASE + i * INSTR_SIZE
            is_term, fn = steps[i]
            if is_term:
                term = fn
                term_pc = pc
                term_count = 1
                break
            nxt = i + 1
            if nxt < n:
                pair = (instrs[i].op, instrs[nxt].op)
                if steps[nxt][0]:
                    maker = _TERM_FUSE.get(pair)
                    if maker is not None:
                        term = maker(instrs[i], instrs[nxt], pc,
                                     pc + INSTR_SIZE)
                        term_pc = pc
                        term_count = 2
                        fused += 1
                        break
                else:
                    maker = _BODY_FUSE.get(pair)
                    if maker is not None:
                        body.append(maker(instrs[i], instrs[nxt], pc,
                                          pc + INSTR_SIZE))
                        body_count += 2
                        fused += 1
                        i += 2
                        continue
            if fn is not None:
                body.append(fn)
            body_count += 1
            i += 1
        block = (tuple(body), body_count, term, term_pc, term_count, fused)
        self.blocks[index] = block
        return block


def predecode_program(program) -> ThreadedProgram:
    """Run the predecode pass, reporting ``execute.predecode_ms``."""
    start = time.perf_counter()
    threaded = ThreadedProgram(program)
    if metrics.active():
        metrics.count("execute.predecode_ms",
                      (time.perf_counter() - start) * 1000.0)
    return threaded


# ---------------------------------------------------------------------------
# the threaded VM
# ---------------------------------------------------------------------------

class ThreadedVM(OmniVM):
    """OmniVM with the threaded-code dispatch loop.

    Semantics match the reference interpreter bit-for-bit on the
    difftest corpus; the only relaxation is fuel granularity — fuel and
    ``instret`` are charged per basic block, so :class:`FuelExhausted`
    (and the service watchdog's deadline cut, which zeroes ``fuel``
    asynchronously) land at the next block boundary, at most one block
    late.  A program that *completes* at exactly its fuel budget still
    completes, as under the legacy engine.

    When ``count_opcodes`` is set the VM falls back to the legacy
    per-instruction loop so instruction-mix instrumentation observes
    every opcode individually (fusion would otherwise fold pairs).
    """

    def __init__(self, program, memory, hostcall=None, fuel=50_000_000,
                 threaded: ThreadedProgram | None = None):
        super().__init__(program, memory, hostcall, fuel)
        self._threaded = (threaded if threaded is not None
                          else predecode_program(program))
        self._blocks_run = 0
        self._fused_run = 0

    def run(self, entry=None):
        blocks_before = self._blocks_run
        fused_before = self._fused_run
        try:
            return super().run(entry)
        finally:
            if metrics.active():
                blocks = self._blocks_run - blocks_before
                fused = self._fused_run - fused_before
                if blocks:
                    metrics.count("execute.blocks", blocks)
                if fused:
                    metrics.count("execute.fused", fused)

    def _run_loop(self, state, instrs, sentinel):
        if self.count_opcodes:
            # Instruction-mix instrumentation needs per-instruction
            # dispatch; the legacy loop is the measurement path.
            return OmniVM._run_loop(self, state, instrs, sentinel)
        program = self._threaded
        blocks = program.blocks
        build = program.build_block
        n = program.length
        regs = state.regs
        fregs = state.fregs
        memory = self.memory
        blocks_run = 0
        fused_run = 0
        try:
            while not state.halted:
                pc = state.pc
                if pc == sentinel:
                    break
                offset = pc - CODE_BASE
                index = offset >> 3
                if offset & 7 or index < 0 or index >= n:
                    raise AccessViolation(
                        f"execute at bad address {pc:#010x}", pc, "execute"
                    )
                block = blocks[index]
                if block is None:
                    block = build(index)
                body, body_count, term, term_pc, term_count, fused = block
                blocks_run += 1
                fused_run += fused
                try:
                    for fn in body:
                        fn(regs, fregs, memory)
                except AccessViolation as violation:
                    # The faulting closure annotated its own pc; charge
                    # exactly the retired prefix, then deliver.
                    fault_pc = violation.fault_pc
                    state.instret += ((fault_pc - pc) >> 3) + 1
                    state.pc = fault_pc
                    self._deliver_violation(violation)
                    if state.instret > self.fuel:
                        raise FuelExhausted(
                            f"exceeded fuel of {self.fuel} instructions"
                        )
                    continue
                except VMRuntimeError as err:
                    fault_pc = getattr(err, "fault_pc", None)
                    if fault_pc is not None:
                        state.instret += ((fault_pc - pc) >> 3) + 1
                        state.pc = fault_pc
                    raise
                state.instret += body_count + term_count
                state.pc = term_pc
                if term is not None:
                    try:
                        state.pc = term(self, state, regs)
                    except AccessViolation as violation:
                        # A faulting fused terminator (or a hostcall that
                        # faulted reading module memory): roll instret
                        # back to the retired prefix, then deliver.
                        fault_pc = getattr(violation, "fault_pc", term_pc)
                        retired = ((fault_pc - term_pc) >> 3) + 1
                        state.instret -= term_count - retired
                        state.pc = fault_pc
                        self._deliver_violation(violation)
                        if state.instret > self.fuel:
                            raise FuelExhausted(
                                f"exceeded fuel of {self.fuel} instructions"
                            )
                        continue
                if state.instret > self.fuel and not state.halted:
                    raise FuelExhausted(
                        f"exceeded fuel of {self.fuel} instructions"
                    )
        finally:
            self._blocks_run += blocks_run
            self._fused_run += fused_run
        return s32(state.regs[1]) if not state.halted else state.exit_code
