"""OmniVM disassembler: bytes (or linked programs) → readable listings.

The inverse of the assembler, used by tooling, tests (encode/disassemble
round trips), and anyone debugging a mobile module they received over
the wire.
"""

from __future__ import annotations

from repro.omnivm.encoding import decode_program
from repro.omnivm.isa import INSTR_SIZE
from repro.omnivm.linker import LinkedProgram
from repro.omnivm.memory import CODE_BASE


def disassemble_bytes(blob: bytes, base: int = CODE_BASE) -> str:
    """Disassemble a raw text image into an address-annotated listing."""
    lines = []
    for index, instr in enumerate(decode_program(blob)):
        lines.append(f"{base + index * INSTR_SIZE:08x}:  {instr}")
    return "\n".join(lines)


def disassemble_program(program: LinkedProgram,
                        function: str | None = None) -> str:
    """Disassemble a linked program with symbol annotations.

    Pass ``function`` to restrict the listing to one function's range.
    """
    by_address: dict[int, list[str]] = {}
    for name, address in program.symbols.items():
        by_address.setdefault(address, []).append(name)
    start, end = 0, len(program.instrs)
    if function is not None:
        start, end = program.function_ranges[function]
    lines = []
    for index in range(start, end):
        address = CODE_BASE + index * INSTR_SIZE
        for name in sorted(by_address.get(address, [])):
            lines.append(f"{name}:")
        instr = program.instrs[index]
        annotation = ""
        if instr.spec.is_control and instr.spec.kind in (
            "jump", "call", "branch", "branchi",
        ):
            target_names = by_address.get(instr.imm & 0xFFFFFFFF, [])
            if target_names:
                annotation = f"    ; -> {sorted(target_names)[0]}"
        lines.append(f"  {address:08x}:  {instr}{annotation}")
    return "\n".join(lines)
