"""Worker-process side of the sharded module-hosting service.

One worker process serves one shard of the request space (see
:mod:`repro.service_router` for the consistent-hash front end).  Inside
the process lives an ordinary :class:`~repro.service.ModuleHost` — the
same worker threads, deadline watchdog, quota enforcement, retry policy,
and fault injection as the single-process service — fronted by a small
message loop over the router's pipe.  That composition is the point:
every governance mechanism is the *same code* on both sides of the
process boundary, so deadline/quota/retry/fallback semantics cannot
drift between the threaded and sharded hosts.

Protocol (pickled tuples over a :class:`multiprocessing.Pipe`):

router -> worker
    ``("request", ModuleRequest)``          run it, reply when done
    ``("register", token, name, payload, policy)``  register a module
    ``("revoke", token, name)``             revoke a module
    ``("stats", token)``                    reply with a stats snapshot
    ``("shutdown", token)``                 drain, reply stats, exit

worker -> router
    ``("response", ModuleResponse)``        a finished request
    ``("ctl_ok", token, result)``           control op succeeded
    ``("ctl_err", token, serialized)``      control op raised; the
    router re-raises the same class via
    :func:`repro.errors.deserialize_error`.

The worker's engine owns a *private* in-memory translation cache —
that is what sharding keeps hot — layered over the shared on-disk cold
tier (``disk_cache_dir``), whose atomic, integrity-checked, fsynced
writes (:mod:`repro.cache`) make cross-process sharing safe.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.compiler import CompileOptions
from repro.errors import serialize_error
from repro.service import FaultInjector, ModuleHost, RetryPolicy
from repro.sfi.policy import DEFAULT_POLICY, SandboxPolicy
from repro.translators.base import TranslationOptions

__all__ = ["WorkerConfig", "worker_main"]


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker process needs to build its service stack.

    Picklable by construction (plain data + frozen dataclasses): the
    router ships one of these to every shard, including respawns after
    a crash."""

    shard_index: int
    shard_count: int
    target: str | None = None
    profile: TranslationOptions = field(default_factory=TranslationOptions)
    compile_options: CompileOptions = field(default_factory=CompileOptions)
    execution_engine: str = "auto"
    disk_cache_dir: str | None = None
    cache_capacity: int = 64
    threads: int = 2
    queue_depth: int = 32
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    default_deadline: float | None = None
    watchdog_interval: float = 0.002
    fault_spec: dict | None = None


def _build_host(config: WorkerConfig) -> ModuleHost:
    from repro.cache import TranslationCache
    from repro.engine import Engine

    cache = TranslationCache(capacity=config.cache_capacity,
                             disk_dir=config.disk_cache_dir)
    engine = Engine(
        target=config.target,
        profile=config.profile,
        cache=cache,
        compile_options=config.compile_options,
        execution_engine=config.execution_engine,
    )
    faults = None
    if config.fault_spec is not None:
        faults = FaultInjector()
        faults.arm(config.fault_spec)
    host = ModuleHost(
        engine,
        workers=config.threads,
        queue_depth=config.queue_depth,
        retry=config.retry,
        faults=faults,
        default_deadline=config.default_deadline,
        watchdog_interval=config.watchdog_interval,
    )
    return host


def _stats_payload(host: ModuleHost) -> dict:
    payload = host.stats.snapshot()
    payload["cache"] = host.engine.cache.stats().to_dict() \
        if host.engine.cache is not None else {}
    return payload


def _register_payload_module(payload):
    """Reverse the router's wire encoding of a module definition."""
    kind, body = payload
    if kind == "obj":
        from repro.omnivm.objfile import ObjectModule

        return ObjectModule.from_bytes(body)
    return body  # MiniC source text; the worker's engine compiles it


def worker_main(config: WorkerConfig, conn) -> None:
    """Process entry point: serve requests from *conn* until shutdown.

    Responses are streamed back as the inner host finishes them (its
    worker threads invoke the :class:`~repro.service.PendingRequest`
    done-callbacks), so a slow request never blocks the message loop —
    the loop only ever blocks on ``conn.recv()``.
    """
    host = _build_host(config).start()
    send_lock = threading.Lock()

    def send(message) -> None:
        with send_lock:
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):
                # Router is gone; the process is about to be reaped.
                pass

    def respond(response) -> None:
        send(("response", response))

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # router died or closed our pipe: exit quietly
            kind = message[0]
            if kind == "request":
                host.submit(message[1], block=True).on_done(respond)
            elif kind == "register":
                token, name, payload, policy = message[1:]
                try:
                    host.register_module(
                        name, _register_payload_module(payload),
                        policy if isinstance(policy, SandboxPolicy)
                        else DEFAULT_POLICY)
                    send(("ctl_ok", token, None))
                except Exception as err:
                    send(("ctl_err", token, serialize_error(err)))
            elif kind == "revoke":
                token, name = message[1:]
                try:
                    host.revoke_module(name)
                    send(("ctl_ok", token, None))
                except Exception as err:
                    send(("ctl_err", token, serialize_error(err)))
            elif kind == "stats":
                send(("ctl_ok", message[1], _stats_payload(host)))
            elif kind == "shutdown":
                host.stop()  # drains queued requests first
                send(("ctl_ok", message[1], _stats_payload(host)))
                break
    finally:
        try:
            conn.close()
        except OSError:
            pass
