"""Shared utilities for optimizer passes (def/use bookkeeping)."""

from __future__ import annotations

from collections import Counter

from repro.ir.ir import Function, Instr, Temp


def definition_counts(func: Function) -> Counter:
    """How many times each temp is (re)defined in the function.

    Parameters count as one definition (they are defined at entry).
    """
    counts: Counter = Counter()
    for param in func.params:
        counts[param] += 1
    for block in func.blocks:
        for instr in block.all_instrs():
            if instr.dest is not None:
                counts[instr.dest] += 1
    return counts


def use_counts(func: Function) -> Counter:
    counts: Counter = Counter()
    for block in func.blocks:
        for instr in block.all_instrs():
            for temp in instr.used_temps():
                counts[temp] += 1
    return counts


def is_pure(instr: Instr) -> bool:
    """True for instructions with no side effects and no trap potential
    other than arithmetic (loads are NOT pure: memory may change)."""
    if instr.op in ("bin", "cmp", "cast", "copy", "frameaddr"):
        return True
    return False


def defs_in_blocks(func: Function, labels: set[str]) -> Counter:
    """Definition counts restricted to the given block labels."""
    counts: Counter = Counter()
    for block in func.blocks:
        if block.label not in labels:
            continue
        for instr in block.all_instrs():
            if instr.dest is not None:
                counts[instr.dest] += 1
    return counts


def replace_temp_everywhere(func: Function, old: Temp, new) -> None:
    mapping = {old: new}
    for block in func.blocks:
        for instr in block.all_instrs():
            instr.replace_uses(mapping)
