"""Local (per-basic-block) forward optimizations.

Two classic passes share the forward-scan machinery:

* **Copy / constant propagation** — replaces uses of a temp with its known
  copy source or constant value while the binding is valid (invalidated as
  soon as either side is redefined).
* **Common subexpression elimination by local value numbering** — reuses
  the result of an identical pure computation (``bin``/``cmp``/``cast``/
  ``frameaddr``) earlier in the same block.  Loads participate too, with a
  memory generation counter that any store or call bumps, so a load is
  only reused while memory provably hasn't changed.

Temps assigned exactly once in the whole function additionally propagate
*globally* (their binding can never be invalidated), which is what lets
address computations feed cleanly into LICM and the back ends.
"""

from __future__ import annotations

from repro.ir.ir import Const, Function, GlobalRef, Instr, Operand, Temp
from repro.opt.common import definition_counts


def propagate_copies(func: Function) -> int:
    """Copy/constant propagation; returns number of operand replacements."""
    def_counts = definition_counts(func)
    changes = 0

    # Global bindings: temps defined exactly once by a copy of a constant
    # or global address are safe to substitute everywhere.
    global_binding: dict[Temp, Operand] = {}
    for block in func.blocks:
        for instr in block.instrs:
            if (
                instr.op == "copy"
                and instr.dest is not None
                and def_counts[instr.dest] == 1
                and isinstance(instr.args[0], (Const, GlobalRef))
            ):
                global_binding[instr.dest] = instr.args[0]

    for block in func.blocks:
        local: dict[Temp, Operand] = {}

        def substitute(op: Operand) -> Operand:
            nonlocal changes
            seen: set[Temp] = set()
            while isinstance(op, Temp):
                if op in seen:
                    break
                seen.add(op)
                bound = local.get(op) or global_binding.get(op)
                if bound is None:
                    break
                op = bound
                changes += 1
            return op

        for instr in block.all_instrs():
            instr.args = [substitute(a) for a in instr.args]
            dest = instr.dest
            if dest is not None:
                # Redefinition kills bindings of dest and bindings to dest.
                local.pop(dest, None)
                for key in [k for k, v in local.items() if v == dest]:
                    local.pop(key)
                if instr.op == "copy":
                    source = instr.args[0]
                    if isinstance(source, (Const, GlobalRef)):
                        local[dest] = source
                    elif isinstance(source, Temp) and source != dest:
                        local[dest] = source
    return changes


_PURE_OPS = ("bin", "cmp", "cast", "frameaddr")


def _value_key(instr: Instr, memory_gen: int) -> tuple | None:
    if instr.op == "bin":
        args = instr.args
        # Commutative ops get a canonical operand order.
        if instr.subop in ("add", "mul", "and", "or", "xor"):
            args = sorted(args, key=str)
        return ("bin", instr.subop, instr.dest.ty, tuple(map(str, args)))
    if instr.op == "cmp":
        return ("cmp", instr.subop, instr.cmp_ty, tuple(map(str, instr.args)))
    if instr.op == "cast":
        return ("cast", instr.subop, instr.dest.ty, str(instr.args[0]))
    if instr.op == "frameaddr":
        return ("frameaddr", instr.slot)
    if instr.op == "load":
        return ("load", instr.mem_ty, str(instr.args[0]), memory_gen)
    return None


def local_cse(func: Function) -> int:
    """Local value numbering; returns the number of reused computations."""
    changes = 0
    for block in func.blocks:
        available: dict[tuple, Temp] = {}
        memory_gen = 0
        rewritten: list[Instr] = []
        for instr in block.instrs:
            if instr.op in ("store", "call", "icall", "hostcall"):
                memory_gen += 1
            key = None
            if instr.op in _PURE_OPS or instr.op == "load":
                key = _value_key(instr, memory_gen)
            if key is not None and key in available:
                prior = available[key]
                if prior.ty == instr.dest.ty:
                    rewritten.append(Instr("copy", instr.dest, [prior]))
                    changes += 1
                    self_invalidate(available, instr.dest)
                    continue
            # Invalidate keys that mention a temp we are about to redefine.
            if instr.dest is not None:
                self_invalidate(available, instr.dest)
                if key is not None:
                    available[key] = instr.dest
            rewritten.append(instr)
        block.instrs = rewritten
    return changes


def self_invalidate(available: dict[tuple, Temp], dest: Temp) -> None:
    """Remove value-number entries that produce or mention *dest*."""
    dest_str = str(dest)
    stale = [
        key
        for key, value in available.items()
        if value == dest or any(dest_str == part for part in _key_operands(key))
    ]
    for key in stale:
        del available[key]


def _key_operands(key: tuple) -> tuple:
    for part in key:
        if isinstance(part, tuple):
            return part
    if key and key[0] == "load":
        return (key[2],)
    return ()


def run(func: Function) -> int:
    return propagate_copies(func) + local_cse(func)
