"""Loop-invariant code motion.

Hoists pure, non-trapping instructions (address arithmetic, casts,
``frameaddr``, comparisons) out of natural loops into a freshly created
preheader block.  The paper calls out exactly this optimization class:
because OmniVM exposes data layout as explicit address arithmetic, the
*compiler* can move the invariant parts of array-index computations out of
loops before the module ever reaches a translator.

Correctness conditions on the non-SSA IR, checked per candidate:

* the instruction is pure (no loads, stores, calls, possible traps);
* every temp operand has **no definitions inside the loop**;
* the destination temp is defined exactly **once in the entire function**
  (so hoisting cannot change which definition reaches any use).

Because hoisted instructions are speculatable (pure and non-trapping),
they may execute even when the loop body would not have — that is safe.
"""

from __future__ import annotations

from repro.ir.ir import BasicBlock, Function, Instr, Temp
from repro.ir.cfg import natural_loops, predecessors
from repro.opt.common import definition_counts, defs_in_blocks


def run(func: Function) -> int:
    hoisted_total = 0
    # Recompute loops after each hoist batch: preheader insertion changes
    # the CFG.  Loop until no loop yields further motion.
    progress = True
    while progress:
        progress = False
        loops = natural_loops(func)
        def_counts = definition_counts(func)
        for loop in loops:
            hoisted = _hoist_from_loop(func, loop.header, loop.body, def_counts)
            if hoisted:
                hoisted_total += hoisted
                progress = True
                break  # CFG changed; recompute loops
    return hoisted_total


def _hoist_from_loop(
    func: Function, header: str, body: set[str], def_counts
) -> int:
    loop_defs = defs_in_blocks(func, body)

    def is_invariant_operand(op) -> bool:
        if isinstance(op, Temp):
            return loop_defs[op] == 0
        return True  # Const / GlobalRef

    candidates: list[tuple[BasicBlock, Instr]] = []
    block_map = func.block_map()
    for label in body:
        block = block_map[label]
        for instr in block.instrs:
            if instr.op not in ("bin", "cmp", "cast", "copy", "frameaddr"):
                continue
            if instr.op == "bin" and instr.subop in ("div", "rem"):
                continue  # may trap; do not speculate
            if instr.dest is None or def_counts[instr.dest] != 1:
                continue
            if not all(is_invariant_operand(a) for a in instr.args):
                continue
            candidates.append((block, instr))

    if not candidates:
        return 0

    preheader = _get_or_create_preheader(func, header, body)
    hoisted = 0
    # Iterate until no more candidates become hoistable (an invariant
    # instruction may depend on another hoisted one).
    moved: set[id] = set()
    changed = True
    while changed:
        changed = False
        loop_defs = defs_in_blocks(func, body)
        for block, instr in candidates:
            if id(instr) in moved:
                continue
            if instr not in block.instrs:
                continue
            if not all(is_invariant_operand(a) for a in instr.args):
                continue
            block.instrs.remove(instr)
            preheader.instrs.append(instr)
            moved.add(id(instr))
            hoisted += 1
            changed = True
    return hoisted


def _get_or_create_preheader(
    func: Function, header: str, body: set[str]
) -> BasicBlock:
    """Return a block that is the unique out-of-loop predecessor of the
    loop header, creating one and rewiring edges if necessary."""
    preds = predecessors(func)
    outside = [p for p in preds[header] if p not in body]
    block_map = func.block_map()
    if len(outside) == 1:
        candidate = block_map[outside[0]]
        term = candidate.terminator
        if term is not None and term.op == "jump" and term.targets == [header]:
            return candidate
    preheader = BasicBlock(f"{header}.pre", [], Instr("jump", targets=[header]))
    for label in outside:
        term = block_map[label].terminator
        if term is not None:
            term.targets = [
                preheader.label if t == header else t for t in term.targets
            ]
    # Insert the preheader just before the header for readable layout.
    index = next(i for i, b in enumerate(func.blocks) if b.label == header)
    func.blocks.insert(index, preheader)
    return preheader
