"""Optimization pass manager.

Three optimization levels mirror the compilers in the paper's evaluation:

* ``O0`` — no machine-independent optimization (used for ablation).
* ``O1`` — local optimizations only: constant folding, copy/constant
  propagation, local CSE, strength reduction, DCE, CFG cleanup.
* ``O2`` — O1 plus loop-invariant code motion, iterated to a fix point.
  This is "the highest available level of intra-procedural global
  optimization" the paper uses for all measured compilers.

Both the OmniVM code generator and the native back ends consume the same
optimized IR: the mobile-vs-native performance differences measured by the
benchmark harness therefore come from translation effects and SFI, exactly
as in the paper (which notes remaining native-cc advantages come from
machine-dependent optimization, modeled in :mod:`repro.native.profiles`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import metrics
from repro.ir.ir import Function, Module, verify_module
from repro.opt import constfold, dce, licm, localopt, simplifycfg, strength


@dataclass(frozen=True)
class OptOptions:
    """Configuration for the optimizer pipeline."""

    level: int = 2
    max_iterations: int = 8
    run_licm: bool | None = None  # None = derive from level

    @property
    def licm_enabled(self) -> bool:
        if self.run_licm is not None:
            return self.run_licm
        return self.level >= 2


def optimize_function(func: Function, options: OptOptions | None = None) -> int:
    """Run the pipeline on one function; returns total change count."""
    options = options or OptOptions()
    if options.level <= 0:
        return 0
    total = 0
    for _ in range(options.max_iterations):
        changes = 0
        changes += constfold.run(func)
        changes += localopt.run(func)
        changes += strength.run(func)
        if options.licm_enabled:
            changes += licm.run(func)
            changes += localopt.run(func)
        changes += constfold.run(func)
        changes += dce.run(func)
        changes += simplifycfg.run(func)
        total += changes
        if changes == 0:
            break
    return total


def optimize_module(module: Module, options: OptOptions | None = None) -> int:
    """Optimize every function in *module*; verifies the result."""
    total = 0
    with metrics.stage("opt"):
        for func in module.functions:
            total += optimize_function(func, options)
        verify_module(module)
    if metrics.active():
        metrics.count("opt.functions", len(module.functions))
        metrics.count("opt.changes", total)
    return total
