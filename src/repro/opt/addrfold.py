"""Addressing-mode selection on the IR (pre-codegen).

OmniVM memory instructions take ``base + 32-bit immediate`` or
``base + index`` addresses.  The front end lowers all addressing to
explicit adds; this pass folds those adds back into the memory
instructions so code generators (OmniVM *and* the native back ends) can
use the rich addressing modes:

* ``load [t], off``  where ``t = add base, C``   →  ``load [base], off+C``
* ``load [t]``       where ``t = add base, idx`` →  ``load [base + idx]``

Folding is only legal when the value of the replacement operands at the
memory instruction provably equals their value at the add, which on this
non-SSA IR we guarantee by requiring every involved temp to be defined
exactly once in the function.  (Front-end-generated address temps are
single-def; loop counters and accumulators are not, and are never folded.)

The folded-through add remains in place; DCE removes it if nothing else
uses it.  The pass records its effect in ``Instr.offset`` /
``Instr.addr_mode`` (added to the core IR dataclass as optional fields).
"""

from __future__ import annotations

from repro.ir.ir import Const, Function, Instr, Operand, Temp
from repro.opt.common import definition_counts
from repro.utils.bits import s32


def _single_defs(func: Function):
    counts = definition_counts(func)
    defs: dict[Temp, Instr] = {}
    for block in func.blocks:
        for instr in block.instrs:
            if instr.dest is not None and counts[instr.dest] == 1:
                defs[instr.dest] = instr
    return counts, defs


def run(func: Function) -> int:
    """Fold addressing arithmetic into load/store instructions."""
    counts, defs = _single_defs(func)

    def is_stable(op: Operand) -> bool:
        if isinstance(op, Temp):
            return counts[op] == 1
        return True  # Const / GlobalRef never change

    changes = 0
    for block in func.blocks:
        for instr in block.instrs:
            if instr.op not in ("load", "store"):
                continue
            # Ensure optional fields exist (plain attributes on the node).
            if not hasattr(instr, "offset"):
                instr.offset = 0
            if not hasattr(instr, "addr_mode"):
                instr.addr_mode = "simple"
            changed = True
            while changed:
                changed = False
                base = instr.args[0]
                if not isinstance(base, Temp):
                    break
                definition = defs.get(base)
                if definition is None or definition.op != "bin":
                    break
                if definition.subop == "add":
                    a, b = definition.args
                    if isinstance(b, Const) and is_stable(a):
                        instr.args[0] = a
                        instr.offset = s32(instr.offset + int(b.value))
                        changes += 1
                        changed = True
                    elif isinstance(a, Const) and is_stable(b):
                        instr.args[0] = b
                        instr.offset = s32(instr.offset + int(a.value))
                        changes += 1
                        changed = True
                    elif (
                        instr.offset == 0
                        and instr.addr_mode == "simple"
                        and is_stable(a)
                        and is_stable(b)
                    ):
                        # base + index form (terminal: no further folding).
                        # load: [addr] -> [base, index]
                        # store: [addr, value] -> [base, index, value]
                        instr.args[0] = a
                        instr.args.insert(1, b)
                        instr.addr_mode = "indexed"
                        changes += 1
                        break
                elif definition.subop == "sub":
                    a, b = definition.args
                    if isinstance(b, Const) and is_stable(a):
                        instr.args[0] = a
                        instr.offset = s32(instr.offset - int(b.value))
                        changes += 1
                        changed = True
                    else:
                        break
                else:
                    break
    return changes


def address_operands(instr: Instr) -> tuple[Operand, Operand | None, int]:
    """Decompose a (possibly folded) memory instruction's address.

    Returns ``(base, index_or_None, offset)``.  For stores the value
    operand is the last arg; for loads there is no value operand.
    """
    offset = getattr(instr, "offset", 0)
    mode = getattr(instr, "addr_mode", "simple")
    if mode == "indexed":
        return instr.args[0], instr.args[1], offset
    return instr.args[0], None, offset


def value_operand(instr: Instr) -> Operand:
    """The stored value of a store instruction (mode-aware)."""
    if instr.op != "store":
        raise ValueError("value_operand on non-store")
    return instr.args[-1]
