"""Control-flow graph cleanup.

* removes unreachable blocks,
* forwards jumps through empty blocks (a block containing only ``jump``),
* merges a block into its unique predecessor when that predecessor's only
  successor is the block (straight-line fusion),
* threads branches whose two targets are identical.

Runs to a fixed point; later passes and the back ends rely on the result
being free of trivial chains.
"""

from __future__ import annotations

from repro.ir.ir import Function, Instr
from repro.ir.cfg import predecessors, remove_unreachable


def _forward_empty_blocks(func: Function) -> int:
    """Map labels of empty jump-only blocks to their final destinations."""
    forward: dict[str, str] = {}
    for block in func.blocks:
        if (
            not block.instrs
            and block.terminator is not None
            and block.terminator.op == "jump"
            and block.terminator.targets[0] != block.label
        ):
            forward[block.label] = block.terminator.targets[0]

    def resolve(label: str) -> str:
        seen = set()
        while label in forward and label not in seen:
            seen.add(label)
            label = forward[label]
        return label

    changes = 0
    entry_label = func.entry.label
    for block in func.blocks:
        term = block.terminator
        if term is None:
            continue
        new_targets = [resolve(t) for t in term.targets]
        if new_targets != term.targets:
            term.targets = new_targets
            changes += 1
    # The entry block must stay first even if empty.
    if entry_label in forward:
        forward.pop(entry_label)
    return changes


def _merge_straight_lines(func: Function) -> int:
    changes = 0
    preds = predecessors(func)
    block_map = func.block_map()
    merged: set[str] = set()
    for block in func.blocks:
        if block.label in merged:
            continue
        while True:
            term = block.terminator
            if term is None or term.op != "jump":
                break
            succ_label = term.targets[0]
            if succ_label == block.label or succ_label == func.entry.label:
                break
            if len(preds[succ_label]) != 1:
                break
            succ = block_map[succ_label]
            if succ.label in merged:
                break
            block.instrs.extend(succ.instrs)
            block.terminator = succ.terminator
            merged.add(succ.label)
            # Fix predecessor info for targets of the absorbed block.
            for target in succ.successors():
                preds[target] = [
                    block.label if p == succ.label else p for p in preds[target]
                ]
            changes += 1
    if merged:
        func.blocks = [b for b in func.blocks if b.label not in merged]
    return changes


def run(func: Function) -> int:
    total = 0
    while True:
        changes = 0
        for block in func.blocks:
            term = block.terminator
            if term is not None and term.op == "br" and term.targets[0] == term.targets[1]:
                block.terminator = Instr("jump", targets=[term.targets[0]])
                changes += 1
        changes += _forward_empty_blocks(func)
        changes += remove_unreachable(func)
        changes += _merge_straight_lines(func)
        changes += remove_unreachable(func)
        total += changes
        if changes == 0:
            return total
