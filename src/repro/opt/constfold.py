"""Constant folding and algebraic simplification.

Folds ``bin``/``cmp``/``cast`` instructions whose operands are constants
into ``copy const``, and applies identity simplifications (``x+0``,
``x*1``, ``x&x`` ...).  Branch folding (``br`` on constants) lives here
too, since it uses the same evaluator.

All arithmetic is performed with the exact 32-bit two's-complement /
IEEE-754 semantics of the simulators, so folding never changes observable
behaviour — a property the test suite checks with hypothesis.
"""

from __future__ import annotations

from repro.ir.ir import Const, Function, Instr, Operand, is_signed
from repro.omnivm import semantics
from repro.utils.bits import (
    add32,
    div32,
    divu32,
    mul32,
    rem32,
    remu32,
    round_f32,
    s32,
    sll32,
    sra32,
    srl32,
    sub32,
    u32,
)


def _as_int(const: Const) -> int:
    return u32(int(const.value))


def eval_binop(subop: str, a: Const, b: Const, ty: str) -> Const | None:
    """Evaluate a binary operation over constants; None if it would trap."""
    if ty in ("f32", "f64"):
        x, y = float(a.value), float(b.value)
        try:
            if subop == "add":
                r = x + y
            elif subop == "sub":
                r = x - y
            elif subop == "mul":
                r = x * y
            elif subop == "div":
                if y == 0.0:
                    return None
                r = x / y
            else:
                return None
        except (OverflowError, ValueError):
            return None
        if ty == "f32":
            r = round_f32(r)
        return Const(r, ty)
    x, y = _as_int(a), _as_int(b)
    signed = is_signed(ty)
    try:
        if subop == "add":
            r = add32(x, y)
        elif subop == "sub":
            r = sub32(x, y)
        elif subop == "mul":
            r = mul32(x, y)
        elif subop == "div":
            r = div32(x, y) if signed else divu32(x, y)
        elif subop == "rem":
            r = rem32(x, y) if signed else remu32(x, y)
        elif subop == "and":
            r = x & y
        elif subop == "or":
            r = x | y
        elif subop == "xor":
            r = x ^ y
        elif subop == "shl":
            r = sll32(x, y)
        elif subop == "shr":
            r = sra32(x, y) if signed else srl32(x, y)
        else:
            return None
    except ZeroDivisionError:
        return None
    value = s32(r) if signed else u32(r)
    return Const(value, ty)


def eval_cmp(pred: str, a: Const, b: Const, cmp_ty: str) -> Const | None:
    if cmp_ty in ("f32", "f64"):
        x, y = float(a.value), float(b.value)
    elif is_signed(cmp_ty):
        x, y = s32(_as_int(a)), s32(_as_int(b))
    else:
        x, y = _as_int(a), _as_int(b)
    table = {
        "eq": x == y,
        "ne": x != y,
        "lt": x < y,
        "le": x <= y,
        "gt": x > y,
        "ge": x >= y,
    }
    if pred not in table:
        return None
    return Const(1 if table[pred] else 0, "i32")


def eval_cast(subop: str, value: Const, dest_ty: str) -> Const | None:
    try:
        if subop == "bitcast":
            if dest_ty in ("i32", "u32"):
                raw = u32(int(value.value))
                return Const(s32(raw) if dest_ty == "i32" else raw, dest_ty)
            return Const(value.value, dest_ty)
        if subop in ("i2f", "u2f"):
            raw = u32(int(value.value))
            as_int = s32(raw) if subop == "i2f" else raw
            result = float(as_int)
            if dest_ty == "f32":
                result = round_f32(result)
            return Const(result, dest_ty)
        if subop == "f2i":
            # Same clamp path as the runtime (repro.omnivm.semantics), so
            # folding cannot change what an out-of-range cast produces.
            if dest_ty == "i32":
                return Const(s32(semantics.f_to_i32(float(value.value))),
                             dest_ty)
            return Const(semantics.f_to_u32(float(value.value)), dest_ty)
        if subop == "fext":
            return Const(float(value.value), "f64")
        if subop == "ftrunc":
            return Const(round_f32(float(value.value)), "f32")
        if subop in ("sext8", "sext16", "zext8", "zext16"):
            raw = u32(int(value.value))
            bits = 8 if subop.endswith("8") else 16
            mask = (1 << bits) - 1
            raw &= mask
            if subop.startswith("sext") and raw & (1 << (bits - 1)):
                raw -= 1 << bits
            raw_norm = s32(raw) if dest_ty == "i32" else u32(raw)
            return Const(raw_norm, dest_ty)
    except (OverflowError, ValueError):
        return None
    return None


def _is_zero(op: Operand) -> bool:
    return isinstance(op, Const) and op.ty not in ("f32", "f64") and int(op.value) == 0


def _is_int_const(op: Operand, value: int) -> bool:
    return (
        isinstance(op, Const)
        and op.ty not in ("f32", "f64")
        and u32(int(op.value)) == u32(value)
    )


def _simplify_identity(instr: Instr) -> Operand | None:
    """Return a replacement operand if the bin op is an identity."""
    subop = instr.subop
    a, b = instr.args
    ty = instr.dest.ty
    if ty in ("f32", "f64"):
        return None  # -0.0 / NaN make float identities unsafe
    if subop == "add":
        if _is_zero(b):
            return a
        if _is_zero(a):
            return b
    elif subop == "sub":
        if _is_zero(b):
            return a
    elif subop == "mul":
        if _is_int_const(b, 1):
            return a
        if _is_int_const(a, 1):
            return b
        if _is_zero(a) or _is_zero(b):
            return Const(0, ty)
    elif subop == "div":
        if _is_int_const(b, 1):
            return a
    elif subop in ("and",):
        if _is_int_const(b, 0xFFFFFFFF):
            return a
        if _is_int_const(a, 0xFFFFFFFF):
            return b
        if _is_zero(a) or _is_zero(b):
            return Const(0, ty)
    elif subop in ("or", "xor"):
        if _is_zero(b):
            return a
        if _is_zero(a):
            return b
    elif subop in ("shl", "shr"):
        if _is_zero(b):
            return a
    return None


def fold_function(func: Function) -> int:
    """Fold constants in place; returns the number of changes made."""
    changes = 0
    for block in func.blocks:
        new_instrs: list[Instr] = []
        for instr in block.instrs:
            folded = _fold_instr(instr)
            if folded is not instr:
                changes += 1
            new_instrs.append(folded)
        block.instrs = new_instrs
        term = block.terminator
        if term is not None and term.op == "br":
            a, b = term.args
            if isinstance(a, Const) and isinstance(b, Const):
                result = eval_cmp(term.subop, a, b, term.cmp_ty)
                if result is not None:
                    taken = term.targets[0] if result.value else term.targets[1]
                    block.terminator = Instr("jump", targets=[taken])
                    changes += 1
            elif term.targets[0] == term.targets[1]:
                block.terminator = Instr("jump", targets=[term.targets[0]])
                changes += 1
    return changes


def _fold_instr(instr: Instr) -> Instr:
    if instr.op == "bin":
        a, b = instr.args
        if isinstance(a, Const) and isinstance(b, Const):
            result = eval_binop(instr.subop, a, b, instr.dest.ty)
            if result is not None:
                return Instr("copy", instr.dest, [result])
        replacement = _simplify_identity(instr)
        if replacement is not None:
            return Instr("copy", instr.dest, [replacement])
        # Canonicalize constant to the right for commutative ops, which
        # helps CSE and lets back ends use immediate forms.
        if instr.subop in ("add", "mul", "and", "or", "xor") and isinstance(
            a, Const
        ) and not isinstance(b, Const):
            instr.args = [b, a]
        return instr
    if instr.op == "cmp":
        a, b = instr.args
        if isinstance(a, Const) and isinstance(b, Const):
            result = eval_cmp(instr.subop, a, b, instr.cmp_ty)
            if result is not None:
                return Instr("copy", instr.dest, [result])
        return instr
    if instr.op == "cast":
        (a,) = instr.args
        if isinstance(a, Const):
            result = eval_cast(instr.subop, a, instr.dest.ty)
            if result is not None:
                return Instr("copy", instr.dest, [result])
        return instr
    return instr


def run(func: Function) -> int:
    return fold_function(func)
