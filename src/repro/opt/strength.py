"""Strength reduction.

Rewrites expensive integer operations into cheaper shift/mask forms:

* ``mul x, 2**k``  →  ``shl x, k`` (both operand orders)
* ``div x, 2**k``  →  ``shr x, k`` for **unsigned** x (signed division
  truncates toward zero, which a plain arithmetic shift does not match
  for negative operands, so signed divides are left alone)
* ``rem x, 2**k``  →  ``and x, 2**k - 1`` for unsigned x

Multiplication by small constants like 3/5/9 could expand to shift+add
chains; the simulated targets all have hardware multiply with modest
latency, so the shift forms above capture nearly all the win — mostly in
the front end's array-indexing code, which is the address-arithmetic
optimization story the paper tells.
"""

from __future__ import annotations

from repro.ir.ir import Const, Function, Instr, is_signed
from repro.utils.bits import is_power_of_two, log2_exact, u32


def run(func: Function) -> int:
    changes = 0
    for block in func.blocks:
        for index, instr in enumerate(block.instrs):
            if instr.op != "bin" or instr.dest is None:
                continue
            ty = instr.dest.ty
            if ty in ("f32", "f64"):
                continue
            a, b = instr.args
            if instr.subop == "mul":
                if isinstance(b, Const) and _pow2(b):
                    shift = log2_exact(u32(int(b.value)))
                    block.instrs[index] = Instr(
                        "bin", instr.dest, [a, Const(shift, ty)], subop="shl"
                    )
                    changes += 1
                elif isinstance(a, Const) and _pow2(a):
                    shift = log2_exact(u32(int(a.value)))
                    block.instrs[index] = Instr(
                        "bin", instr.dest, [b, Const(shift, ty)], subop="shl"
                    )
                    changes += 1
            elif instr.subop == "div" and not is_signed(ty):
                if isinstance(b, Const) and _pow2(b):
                    shift = log2_exact(u32(int(b.value)))
                    block.instrs[index] = Instr(
                        "bin", instr.dest, [a, Const(shift, ty)], subop="shr"
                    )
                    changes += 1
            elif instr.subop == "rem" and not is_signed(ty):
                if isinstance(b, Const) and _pow2(b):
                    mask = u32(int(b.value)) - 1
                    block.instrs[index] = Instr(
                        "bin", instr.dest, [a, Const(mask, ty)], subop="and"
                    )
                    changes += 1
    return changes


def _pow2(const: Const) -> bool:
    value = u32(int(const.value))
    return is_power_of_two(value)
