"""Dead code elimination.

Removes pure instructions whose results are never used.  Works backwards
from the side-effecting instructions: a temp is *live* if it feeds a
side-effecting instruction, a terminator, or another live instruction.
Iterates to a fixed point so chains of dead computations disappear in one
pass invocation.
"""

from __future__ import annotations

from repro.ir.ir import Function, Temp
from repro.opt.common import is_pure


def run(func: Function) -> int:
    removed_total = 0
    while True:
        live: set[Temp] = set()
        for block in func.blocks:
            for instr in block.all_instrs():
                if not is_pure(instr) and instr.op != "load":
                    live.update(instr.used_temps())
        # Propagate liveness through pure instruction chains.
        changed = True
        while changed:
            changed = False
            for block in func.blocks:
                for instr in block.instrs:
                    if instr.dest is not None and instr.dest in live:
                        for temp in instr.used_temps():
                            if temp not in live:
                                live.add(temp)
                                changed = True
        removed = 0
        for block in func.blocks:
            kept = []
            for instr in block.instrs:
                deletable = (is_pure(instr) or instr.op == "load") and (
                    instr.dest is None or instr.dest not in live
                )
                # A load from a dead address is removable: our segmented
                # memory model has no volatile locations, and any faulting
                # address would equally have faulted in the unoptimized
                # program only if the value were used.
                if deletable:
                    removed += 1
                else:
                    kept.append(instr)
            block.instrs = kept
        removed_total += removed
        if removed == 0:
            return removed_total
