"""High-level compilation driver: MiniC source → OmniVM mobile module.

This is the user-facing front door of the package::

    from repro.compiler import compile_and_link
    from repro.runtime.loader import run_module

    program = compile_and_link(["int main() { emit_int(42); return 0; }"])
    code, host = run_module(program)
    assert host.output_values() == [42]

The pipeline is: lex → parse → semantic analysis → IR lowering →
machine-independent optimization (the paper's "compiler does the global
optimization before load time") → addressing-mode selection → register
allocation → OmniVM code generation → link.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import metrics
from repro.frontend.lexer import tokenize
from repro.frontend.parser import Parser
from repro.frontend.sema import SemanticAnalyzer
from repro.ir.builder import build_module
from repro.ir.ir import Module, verify_module
from repro.omnivm.codegen import generate_object
from repro.omnivm.linker import LinkedProgram, link
from repro.omnivm.objfile import ObjectModule
from repro.opt import addrfold, dce
from repro.opt.pipeline import OptOptions, optimize_module


@dataclass(frozen=True)
class CompileOptions:
    """Knobs for the MiniC → OmniVM pipeline."""

    opt_level: int = 2
    num_regs: int = 16  # OmniVM register file size (Table 2 sweep)
    module_name: str = "module"


def compile_to_ir(source: str, options: CompileOptions | None = None) -> Module:
    """Front half of the pipeline: source to optimized IR."""
    options = options or CompileOptions()
    with metrics.stage("frontend.lex"):
        tokens = tokenize(source, f"<{options.module_name}>")
    with metrics.stage("frontend.parse"):
        parser = Parser(tokens)
        unit = parser.parse_translation_unit()
    with metrics.stage("frontend.sema"):
        SemanticAnalyzer(parser.struct_types).analyze(unit)
    with metrics.stage("ir.build"):
        module = build_module(unit, options.module_name, parser.struct_types)
        verify_module(module)
    optimize_module(module, OptOptions(level=options.opt_level))
    # Addressing-mode selection + cleanup of folded-through adds.
    with metrics.stage("opt.addrfold"):
        for func in module.functions:
            addrfold.run(func)
            dce.run(func)
    return module


def compile_to_object(
    source: str, options: CompileOptions | None = None
) -> ObjectModule:
    """Compile one MiniC translation unit to an OmniVM object module."""
    options = options or CompileOptions()
    module = compile_to_ir(source, options)
    return generate_object(module, num_regs=options.num_regs)


def compile_and_link(
    sources: list[str],
    options: CompileOptions | None = None,
    entry_symbol: str = "main",
    extra_objects: list[ObjectModule] | None = None,
) -> LinkedProgram:
    """Compile several translation units and link them into a module."""
    options = options or CompileOptions()
    objects = []
    for index, source in enumerate(sources):
        unit_options = CompileOptions(
            options.opt_level, options.num_regs,
            f"{options.module_name}{index}" if len(sources) > 1
            else options.module_name,
        )
        objects.append(compile_to_object(source, unit_options))
    objects.extend(extra_objects or [])
    return link(objects, name=options.module_name,
                entry_symbol=entry_symbol)
