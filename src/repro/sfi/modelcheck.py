"""Exhaustive small-model checking of the SFI guard templates.

PR 5's CFG verifier checks *emitted* code — every module, at load time.
What it cannot catch is a bug in a guard **template** itself
(:mod:`repro.sfi.rewrite`): the verifier recognizes the protection
pattern the rewriter emits, so a template that is wrong in the same way
everywhere sails through and ships on every translation.  Sotoudeh &
Yedidia ("Automated Formal Verification of a Software Fault Isolation
System") observe that SFI guard sequences are small enough to verify
*once and for all* by exhaustive execution over a scaled-down model —
no SMT solver needed, just an executor and an enumeration that provably
covers the boundary structure of the masks.

This module does exactly that.  For every target × template —

* store with offset (``sw value, off(base)``),
* store with index (``base + index``),
* store with index **and** offset (the form that exposed the
  offset-dropping bug, see ``sandbox_store_address``),
* zero-offset store,
* indirect jump,

— it builds the guard sequence, executes it on a tiny ``MInstr``
interpreter from every boundary-relevant input state, and checks five
properties:

P1 **containment** — the formed store address satisfies
   ``policy.data_contains``; the formed jump target satisfies
   ``policy.code_contains``.  For *every* input, not just sandboxed
   ones: SFI redirects wild addresses, it never lets them through.
P2 **transparency** — an effective address that was already in-sandbox
   (and, for jumps, aligned) comes out *unchanged*.  Sandboxing must
   not break correct programs.  This is the property that caught
   ``base + index + offset`` silently dropping the offset.
P3 **isolation** — the sequence writes only the scratch register:
   every dedicated register (masks, bases, gp) and every input
   register holds its exact input value afterwards, checked after
   *every prefix* of the sequence, so the invariant holds even if a
   signal, thread switch, or delay-slot split lands mid-guard.
P4 **straight-line** — no branches, loads, stores, or ops outside the
   small ALU vocabulary, and every instruction carries
   ``category="sfi"``.  This is what makes delay-slot placement on
   MIPS/SPARC safe: a scheduler may move any template instruction into
   a branch delay slot and the same straight-line sequence still
   executes (P3's per-prefix check covers the interruption windows).
P5 **verifier agreement** — replaying :func:`repro.sfi.verifier
   .scratch_step` over the sequence ends in exactly the abstract state
   the consuming store/jump form requires.  A template the dataflow
   verifier would reject — or, worse, one it would accept for the
   wrong reason — fails here.  (This caught ``_next_state`` comparing
   the rebase immediate against the hardcoded ``SANDBOX_BASE`` instead
   of ``policy.data_base``.)

Two sweeps per template:

* a **boundary sweep** at full width under ``DEFAULT_POLICY``: segment
  edges ±1, the masks and their complements, alternating bit patterns,
  the return sentinel, and 32-bit extremes — with immediate offsets at
  the target's signed-immediate limits;
* an **exhaustive small-model sweep** under a scaled-down policy
  (6-bit segments) where *every* address in and around both segments
  is enumerated — for pair templates, every (base, index) pair.  Per
  Sotoudeh & Yedidia, the guard ALU ops (add/and/or) treat mask bits
  independently, so exhausting a model that contains the full boundary
  structure of the masks generalizes to the full-width policy; the
  boundary sweep pins the full-width corners (carry chains across bit
  31, immediate sign extension) directly.

A violation produces a :class:`Counterexample` carrying the concrete
input state, the sequence, and what went wrong.  Wired three ways:
tier-1 test (``tests/test_sfi_modelcheck.py``), CLI (``omnicc
sfi-check``), and as a memoized precondition of the mutation fuzzer
(:func:`repro.difftest.sfi_mutator.run_sfi_mutation_fuzz`) so template
bugs cannot masquerade as fuzzer findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TranslationError, VerifyError
from repro.sfi import rewrite, verifier
from repro.sfi.policy import DEFAULT_POLICY, RETURN_SENTINEL, SandboxPolicy
from repro.targets.base import MInstr, TargetSpec
from repro.utils.bits import add32, u32

#: The scaled-down policy for the exhaustive sweep: 6-bit address
#: structure (16-byte data segment at 0x20, two aligned code slots at
#: 0x10) satisfying the same invariants as the real layout
#: (base & mask == 0 for both segments; code mask keeps the low 3
#: bits clear).
SMALL_POLICY = SandboxPolicy(
    data_base=0x20, data_mask=0xF, code_base=0x10, code_mask=0x8,
)

#: Every store/jump guard template the rewriter owns.
TEMPLATES = (
    "store_offset",       # base + imm
    "store_index",        # base + index
    "store_index_offset", # base + index + imm
    "store_zero",         # base alone
    "jump",               # indirect control transfer
)

#: Ops the mini-executor implements — the guard vocabulary.  Anything
#: else appearing in a template is itself a finding (P4).
_ALU_OPS = frozenset("add addi and andi or ori mov li lui nop".split())

#: A canary for the untouched-register check: distinguishable from 0
#: and from every policy constant.
_GP_CANARY = 0x5A5A5A5A


@dataclass(frozen=True)
class Counterexample:
    """One concrete input state that violates a template property."""

    arch: str
    template: str
    prop: str        # "containment" | "transparency" | ...
    policy: SandboxPolicy
    inputs: dict     # register/immediate assignment, by role name
    sequence: tuple  # stringified template instructions
    detail: str

    def __str__(self) -> str:
        inputs = ", ".join(f"{k}={v:#x}" if isinstance(v, int) else
                           f"{k}={v}" for k, v in self.inputs.items())
        seq = "; ".join(self.sequence) or "<empty>"
        return (
            f"[{self.arch}/{self.template}] {self.prop} violated: "
            f"{self.detail}\n  inputs: {inputs}\n  sequence: {seq}\n"
            f"  policy: data {self.policy.data_base:#x}/"
            f"{self.policy.data_mask:#x}, code {self.policy.code_base:#x}/"
            f"{self.policy.code_mask:#x}"
        )


@dataclass
class TemplateResult:
    arch: str
    template: str
    states: int = 0
    counterexample: Counterexample | None = None


@dataclass
class ModelCheckReport:
    results: list[TemplateResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.counterexample is None for r in self.results)

    @property
    def states_checked(self) -> int:
        return sum(r.states for r in self.results)

    @property
    def counterexamples(self) -> list[Counterexample]:
        return [r.counterexample for r in self.results
                if r.counterexample is not None]


class _MiniMachine:
    """Executes a guard sequence over a plain register dict, recording
    which registers get written.  Deliberately tiny: only the ALU
    vocabulary guards are allowed to use (P4 rejects the rest before
    execution reaches anything exotic)."""

    def __init__(self, regs: dict[int, int]):
        self.regs = dict(regs)
        self.written: set[int] = set()

    def step(self, instr: MInstr) -> None:
        regs = self.regs
        op = instr.op
        if op == "nop":
            return
        rs = regs.get(instr.rs, 0)
        rt = regs.get(instr.rt, 0)
        if op == "add":
            value = add32(rs, rt)
        elif op == "addi":
            value = add32(rs, u32(instr.imm))
        elif op == "and":
            value = rs & rt
        elif op == "andi":
            value = rs & u32(instr.imm)
        elif op == "or":
            value = rs | rt
        elif op == "ori":
            value = rs | u32(instr.imm)
        elif op == "mov":
            value = rs
        elif op == "li":
            value = u32(instr.imm)
        elif op == "lui":
            value = u32(instr.imm) << 16
        else:
            raise VerifyError(f"mini-machine cannot execute {instr}")
        regs[instr.rd] = value
        self.written.add(instr.rd)


def _dedicated_values(spec: TargetSpec,
                      policy: SandboxPolicy) -> dict[int, int]:
    """The runtime-installed values of the dedicated registers under
    *policy* (registers a target does not reserve — x86's -1 entries —
    are simply absent)."""
    by_name = {
        "sfi_mask": policy.data_mask,
        "sfi_base": policy.data_base,
        "sfi_code_base": policy.code_base,
        "sfi_code_mask": policy.code_mask,
        "gp": _GP_CANARY,
    }
    values: dict[int, int] = {}
    for name, value in by_name.items():
        reg = spec.reserved.get(name, -1)
        if reg >= 0:
            values[reg] = value
    return values


def _free_registers(spec: TargetSpec, count: int) -> list[int]:
    """*count* distinct general registers not reserved by the runtime."""
    reserved = {reg for reg in spec.reserved.values() if reg >= 0}
    out: list[int] = []
    for reg in sorted(set(spec.int_map.values())):
        if reg >= 0 and reg not in reserved:
            out.append(reg)
            if len(out) == count:
                return out
    raise VerifyError(f"{spec.name}: fewer than {count} free registers")


def _boundary_values(policy: SandboxPolicy) -> list[int]:
    """Address values at every edge of the policy's mask structure."""
    values = {
        0, 1, 7, 8,
        policy.data_base - 1, policy.data_base, policy.data_base + 1,
        policy.data_base + policy.data_mask,
        policy.data_base + policy.data_mask + 1,
        policy.data_mask, ~policy.data_mask,
        policy.code_base - 1, policy.code_base, policy.code_base + 1,
        policy.code_base + policy.code_mask,
        policy.code_base + policy.code_mask + 1,
        policy.code_mask, ~policy.code_mask,
        0x55555555, 0xAAAAAAAA,
        0x7FFFFFFF, 0x80000000, 0xFFFFFFFF,
        RETURN_SENTINEL,
    }
    return sorted(u32(v) for v in values)


def _small_values(policy: SandboxPolicy) -> list[int]:
    """Exhaustive value set for the scaled-down policy: every address
    from 0 through past the end of both segments, plus the 32-bit
    extremes (wraparound / sign-boundary carries)."""
    top = max(policy.data_base + policy.data_mask,
              policy.code_base + policy.code_mask) + 3
    values = list(range(top))
    values += [0x7FFFFFFF, 0x80000000, 0xFFFFFFFF]
    return values


def _thin(values: list[int]) -> list[int]:
    """A coarser grid for the register-aliasing re-runs: aliasing is a
    *structural* variation (which register the template reads), so it
    is exercised against a sample of the value grid; the full grid runs
    on the canonical register assignment."""
    head, tail = values[:-3], values[-3:]
    return head[::3] + tail


def _boundary_offsets(spec: TargetSpec) -> list[int]:
    lim = 1 << (spec.imm_bits - 1)
    return [-lim, -8, -1, 1, 7, 8, lim - 1]


def _check_store_state(
    spec: TargetSpec,
    policy: SandboxPolicy,
    template: str,
    base_reg: int,
    offset: int,
    index_reg: int | None,
    regs: dict[int, int],
    inputs: dict,
) -> Counterexample | None:
    """Run one input state through the store template; None if safe."""

    def bad(prop: str, seq, detail: str) -> Counterexample:
        return Counterexample(spec.name, template, prop, policy, inputs,
                              tuple(str(i) for i in seq), detail)

    try:
        seq, new_base, new_offset, new_index = rewrite.sandbox_store_address(
            spec, policy, base_reg, offset, index_reg, omni_addr=0)
    except TranslationError as exc:
        # A typed rejection is a legal template answer (unfittable
        # offsets); the translators fold such offsets before asking.
        if spec.fits_imm(offset):
            return bad("containment", (),
                       f"rejected a fitting offset: {exc}")
        return None

    # P4: straight-line sfi-category ALU code only.
    for instr in seq:
        if (instr.op not in _ALU_OPS or instr.is_branch()
                or instr.is_load() or instr.is_store()):
            return bad("straight-line", seq,
                       f"non-ALU instruction {instr} in guard")
        if instr.category != "sfi":
            return bad("straight-line", seq,
                       f"guard instruction {instr} not category 'sfi'")

    at = spec.reserved["at"]
    machine = _MiniMachine(regs)
    for prefix_len, instr in enumerate(seq, start=1):
        machine.step(instr)
        # P3 after every prefix: only the scratch register moves.
        if machine.written - {at}:
            clobbered = sorted(machine.written - {at})
            return bad("isolation", seq[:prefix_len],
                       f"writes non-scratch register(s) r{clobbered}")
    for reg, value in regs.items():
        if reg != at and machine.regs.get(reg) != value:
            return bad("isolation", seq,
                       f"r{reg} changed {value:#x} -> "
                       f"{machine.regs.get(reg):#x}")

    # The store's own addressing mode, per the returned shape.
    formed = add32(machine.regs.get(new_base, 0), u32(new_offset))
    if new_index is not None:
        formed = add32(formed, machine.regs.get(new_index, 0))

    # P1: containment, for every input.
    if not policy.data_contains(formed):
        return bad("containment", seq,
                   f"formed address {formed:#x} outside the data sandbox")

    # P2: transparency for in-sandbox effective addresses.
    effective = add32(regs.get(base_reg, 0), u32(offset))
    if index_reg is not None:
        effective = add32(effective, regs.get(index_reg, 0))
    if policy.data_contains(effective) and formed != effective:
        return bad("transparency", seq,
                   f"in-sandbox address {effective:#x} rewritten to "
                   f"{formed:#x}")

    # P5: the dataflow verifier's replay reaches the state the store
    # form consumes.
    state = verifier.SCRATCH_UNKNOWN
    for instr in seq:
        state = verifier.scratch_step(instr, spec, policy, state)
    if new_index == at or new_base != at:
        wanted = verifier.SCRATCH_DATA_MASKED       # indexed consumer
    else:
        wanted = verifier.SCRATCH_DATA_SANDBOXED    # direct consumer
    if state != wanted:
        return bad("verifier-agreement", seq,
                   f"scratch replay ends in state {state}, store form "
                   f"needs {wanted}")
    return None


def _check_jump_state(
    spec: TargetSpec,
    policy: SandboxPolicy,
    target_reg: int,
    regs: dict[int, int],
    inputs: dict,
) -> Counterexample | None:
    def bad(prop: str, seq, detail: str) -> Counterexample:
        return Counterexample(spec.name, "jump", prop, policy, inputs,
                              tuple(str(i) for i in seq), detail)

    seq, jump_reg = rewrite.sandbox_jump_target(
        spec, policy, target_reg, omni_addr=0)
    for instr in seq:
        if (instr.op not in _ALU_OPS or instr.is_branch()
                or instr.is_load() or instr.is_store()):
            return bad("straight-line", seq,
                       f"non-ALU instruction {instr} in guard")
        if instr.category != "sfi":
            return bad("straight-line", seq,
                       f"guard instruction {instr} not category 'sfi'")

    at = spec.reserved["at"]
    machine = _MiniMachine(regs)
    for prefix_len, instr in enumerate(seq, start=1):
        machine.step(instr)
        if machine.written - {at}:
            clobbered = sorted(machine.written - {at})
            return bad("isolation", seq[:prefix_len],
                       f"writes non-scratch register(s) r{clobbered}")
    for reg, value in regs.items():
        if reg != at and machine.regs.get(reg) != value:
            return bad("isolation", seq,
                       f"r{reg} changed {value:#x} -> "
                       f"{machine.regs.get(reg):#x}")

    landed = machine.regs.get(jump_reg, 0)
    if not policy.code_contains(landed):
        return bad("containment", seq,
                   f"jump target {landed:#x} outside the aligned code "
                   f"segment")
    target = regs.get(target_reg, 0)
    if policy.code_contains(target) and landed != target:
        return bad("transparency", seq,
                   f"legal target {target:#x} rewritten to {landed:#x}")

    state = verifier.SCRATCH_UNKNOWN
    for instr in seq:
        state = verifier.scratch_step(instr, spec, policy, state)
    if state != verifier.SCRATCH_CODE_SANDBOXED:
        return bad("verifier-agreement", seq,
                   f"scratch replay ends in state {state}, jr needs "
                   f"{verifier.SCRATCH_CODE_SANDBOXED}")
    return None


def _check_template(spec: TargetSpec, policy: SandboxPolicy,
                    template: str, values: list[int],
                    offsets: list[int]) -> TemplateResult:
    """Enumerate every input state of one template under one policy;
    stops at the first counterexample."""
    result = TemplateResult(spec.name, template)
    at = spec.reserved["at"]
    base_r, index_r = _free_registers(spec, 2)
    dedicated = _dedicated_values(spec, policy)

    def regs_for(assignment: dict[int, int]) -> dict[int, int]:
        regs = dict(dedicated)
        regs.update(assignment)
        return regs

    if template == "jump":
        for target_reg in (base_r, at):
            for value in values:
                result.states += 1
                cx = _check_jump_state(
                    spec, policy, target_reg,
                    regs_for({target_reg: u32(value)}),
                    {"target_reg": f"r{target_reg}", "target": u32(value)},
                )
                if cx is not None:
                    result.counterexample = cx
                    return result
        return result

    def cases_for(grid: list[int]) -> list[tuple[int, int, int | None]]:
        if template == "store_zero":
            return [(base, 0, None) for base in grid]
        if template == "store_offset":
            return [(base, off, None) for base in grid for off in offsets]
        if template == "store_index":
            return [(base, 0, idx) for base in grid for idx in grid]
        if template == "store_index_offset":
            small_offsets = [o for o in offsets if -8 <= o <= 8]
            return [(base, off, idx)
                    for base in grid for idx in grid
                    for off in small_offsets]
        raise ValueError(f"unknown template {template!r}")

    if template in ("store_zero", "store_offset"):
        alias_regs = [(base_r, None), (at, None)]
    else:
        alias_regs = [(base_r, index_r), (at, index_r), (base_r, at)]

    for variant, (breg, ireg) in enumerate(alias_regs):
        # Full grid on the canonical register assignment; the aliasing
        # re-runs (structural variations) sample a coarser grid.
        for base, off, idx in cases_for(values if variant == 0
                                        else _thin(values)):
            result.states += 1
            assignment = {breg: u32(base)}
            inputs = {"base_reg": f"r{breg}", "base": u32(base),
                      "offset": off}
            index_reg = None
            if idx is not None:
                index_reg = ireg
                # Aliased registers share one value: the later
                # assignment wins, matching a machine where base and
                # index are the same register.
                assignment[ireg] = u32(idx)
                inputs["index_reg"] = f"r{ireg}"
                inputs["index"] = u32(idx)
                if ireg == breg:
                    inputs["base"] = u32(idx)
            cx = _check_store_state(
                spec, policy, template, breg, off, index_reg,
                regs_for(assignment), inputs,
            )
            if cx is not None:
                result.counterexample = cx
                return result
    return result


def check_templates(
    archs: tuple[str, ...] | None = None,
    policies: tuple[SandboxPolicy, ...] | None = None,
) -> ModelCheckReport:
    """Model-check every guard template on every requested target.

    Runs the full-width boundary sweep under :data:`DEFAULT_POLICY`
    and the exhaustive sweep under :data:`SMALL_POLICY` (or the given
    *policies*: small-structured ones get the exhaustive treatment).
    Returns a report; zero counterexamples means the templates are
    proven over the enumerated state space."""
    from repro.translators import ARCHITECTURES, target_spec

    report = ModelCheckReport()
    if archs is None:
        archs = ARCHITECTURES
    if policies is None:
        policies = (DEFAULT_POLICY, SMALL_POLICY)
    for arch in archs:
        spec = target_spec(arch)
        for policy in policies:
            small = policy.data_mask < (1 << 12)
            values = (_small_values(policy) if small
                      else _boundary_values(policy))
            offsets = ([-9, -8, -1, 1, 7, 8] if small
                       else _boundary_offsets(spec))
            for template in TEMPLATES:
                report.results.append(
                    _check_template(spec, policy, template, values,
                                    offsets))
    return report


#: Memo of precondition runs that passed: key is (archs, identity of
#: the template builders) so monkeypatched/broken templates re-check.
_PRECONDITION_OK: set[tuple] = set()


def assert_templates_safe(archs: tuple[str, ...] | None = None) -> None:
    """Raise :class:`~repro.errors.VerifyError` with the first concrete
    counterexample if any guard template is unsafe.

    Memoized on the template functions' identities — repeated fuzzer
    runs pay the exhaustive sweep once, but a monkeypatched (broken)
    template is always re-checked."""
    key = (tuple(archs) if archs is not None else None,
           id(rewrite.sandbox_store_address),
           id(rewrite.sandbox_jump_target))
    if key in _PRECONDITION_OK:
        return
    report = check_templates(archs)
    if not report.ok:
        lines = [str(cx) for cx in report.counterexamples]
        raise VerifyError(
            "SFI guard template model check failed "
            f"({len(lines)} template(s) unsafe):\n" + "\n".join(lines)
        )
    _PRECONDITION_OK.add(key)
