"""SFI sequence construction for the translators.

Builds the per-target instruction sequences that sandbox unsafe stores
and indirect control transfers.  The sequences differ across targets in
exactly the ways the paper's Figure 1 shows:

=========  ==========================================================
target     store sandboxing sequence (offset form)
=========  ==========================================================
MIPS       ``addiu at, base, off`` ; ``and at, at, mask`` ;
           ``or at, at, segbase`` ; ``sw value, 0(at)``  (3 extra)
PowerPC    ``addi at, base, off`` ; ``andi at, at, MASK`` ;
           ``stwx value, segbase, at``  (2 extra — the indexed store
           folds the final OR, the effect the paper highlights)
SPARC      like PowerPC (``st value, [segbase + at]``)   (2 extra)
x86        ``lea at, [base+off]`` ; ``and at, MASK32`` ;
           ``or at, BASE32`` ; ``mov [at], value``       (3 extra)
=========  ==========================================================

Zero-offset stores skip the address-forming instruction (one fewer).
Indirect jumps use one AND (offset+alignment mask) and one OR on every
target.  All inserted instructions carry ``category="sfi"`` so the
harness can attribute dynamic counts (Figure 1) and the SFI verifier can
recognize the protection pattern.
"""

from __future__ import annotations

from repro.errors import TranslationError
from repro.sfi.policy import SandboxPolicy
from repro.targets.base import MInstr, TargetSpec


def sandbox_store_address(
    spec: TargetSpec,
    policy: SandboxPolicy,
    base_reg: int,
    offset: int,
    index_reg: int | None,
    omni_addr: int,
) -> tuple[list[MInstr], int, int, int | None]:
    """Build the sandboxing prefix for a store.

    Returns ``(prefix_instrs, new_base_reg, new_offset, new_index_reg)``
    describing how the store itself must address memory afterwards.

    Template contract (checked exhaustively by
    :mod:`repro.sfi.modelcheck`): the sequence writes only the scratch
    register, the formed address is contained in the data sandbox for
    *every* input state, and an effective address that was already
    in-sandbox is preserved exactly (``base + offset [+ index]``).  A
    non-zero *offset* must fit the target's immediate field — callers
    fold larger offsets into the base first; passing one that does not
    fit is a typed error, never silently-wrong code.
    """
    at = spec.reserved["at"]
    if offset != 0 and not spec.fits_imm(offset):
        raise TranslationError(
            f"SFI store offset {offset:#x} does not fit {spec.name}'s "
            f"{spec.imm_bits}-bit immediate; fold it into the base first"
        )
    seq: list[MInstr] = []

    def sfi(op: str, **kw) -> MInstr:
        instr = MInstr(op, omni_addr=omni_addr, category="sfi", **kw)
        seq.append(instr)
        return instr

    # 1. Form the full effective address in `at` if it isn't already a
    #    single register.
    addr_reg = base_reg
    if index_reg is not None:
        sfi("add", rd=at, rs=base_reg, rt=index_reg)
        if offset != 0:
            # base + index + offset: the offset must be part of the
            # formed address *before* masking.  (An earlier revision
            # silently dropped it — the sandboxed address was still
            # contained, so no escape, but an in-sandbox store would
            # have landed at the wrong address.  Found by the template
            # model checker's transparency property.)
            sfi("addi", rd=at, rs=at, imm=offset)
        addr_reg = at
    elif offset != 0:
        # One address-forming instruction on every target (x86 models
        # its `lea` with the same three-operand add-immediate).
        sfi("addi", rd=at, rs=base_reg, imm=offset)
        addr_reg = at

    # 2. Mask and rebase.
    if spec.name == "mips":
        sfi("and", rd=at, rs=addr_reg, rt=spec.reserved["sfi_mask"])
        sfi("or", rd=at, rs=at, rt=spec.reserved["sfi_base"])
        return seq, at, 0, None
    if spec.name in ("ppc", "sparc"):
        # Mask with one instruction (rlwinm / and with %gN), then let the
        # store's indexed addressing mode add the segment base register.
        if spec.name == "ppc":
            sfi("andi", rd=at, rs=addr_reg, imm=policy.data_mask)
        else:
            sfi("and", rd=at, rs=addr_reg, rt=spec.reserved["sfi_mask"])
        return seq, spec.reserved["sfi_base"], 0, at
    if spec.name == "x86":
        if addr_reg != at:
            sfi("mov", rd=at, rs=addr_reg)
        sfi("andi", rd=at, rs=at, imm=policy.data_mask)
        sfi("ori", rd=at, rs=at, imm=policy.data_base)
        return seq, at, 0, None
    raise ValueError(f"no SFI store sequence for target {spec.name!r}")


def sandbox_jump_target(
    spec: TargetSpec,
    policy: SandboxPolicy,
    target_reg: int,
    omni_addr: int,
) -> tuple[list[MInstr], int]:
    """Build the sandboxing prefix for an indirect jump; returns
    (prefix, register holding the sandboxed module-space target)."""
    at = spec.reserved["at"]
    seq: list[MInstr] = []

    def sfi(op: str, **kw) -> None:
        seq.append(MInstr(op, omni_addr=omni_addr, category="sfi", **kw))

    if spec.name == "x86":
        if target_reg != at:
            sfi("mov", rd=at, rs=target_reg)
            sfi("andi", rd=at, rs=at, imm=policy.code_mask)
        else:
            sfi("andi", rd=at, rs=target_reg, imm=policy.code_mask)
        sfi("ori", rd=at, rs=at, imm=policy.code_base)
        return seq, at
    # RISC targets: the dedicated mask register holds the *data* offset
    # mask; the code mask differs (alignment bits), so the translator
    # keeps it in the code-base dedicated register's partner... we model
    # the standard two-instruction form with an immediate-capable AND
    # where available and a dedicated register otherwise.
    if spec.name == "ppc":
        sfi("andi", rd=at, rs=target_reg, imm=policy.code_mask)
    elif spec.name == "sparc":
        # simm13 cannot hold the mask; SPARC keeps a second dedicated
        # register (%g4 doubles as code base, %g2 data mask, code mask
        # synthesized as data_mask & ~7 in %g2's partner): modeled as a
        # register-register AND through the code-base register file.
        sfi("and", rd=at, rs=target_reg, rt=spec.reserved["sfi_code_mask"])
    else:  # mips
        sfi("and", rd=at, rs=target_reg, rt=spec.reserved["sfi_code_mask"])
    if spec.name == "ppc":
        sfi("ori", rd=at, rs=at, imm=policy.code_base)
    else:
        sfi("or", rd=at, rs=at, rt=spec.reserved["sfi_code_base"])
    return seq, at


def bundle_padding(
    spec: TargetSpec,
    policy: SandboxPolicy,
    position: int,
    omni_addr: int,
) -> list[MInstr]:
    """Nop padding that brings *position* (a native instruction index)
    up to the next ``policy.pad_align`` bundle boundary.

    Used by the translators for the padding/alignment policy variant:
    every indirect-entry anchor (function entry, branch target,
    call-return point) starts a fresh bundle, so checked regions begin
    on fixed boundaries regardless of what precedes them.  The nops
    carry ``category="pad"`` so the ablation harness can attribute the
    static and dynamic cost, and the SFI verifier insists pad-category
    instructions really are nops (a non-nop hiding in padding would be
    unverified code).  Returns ``[]`` when padding is disabled or the
    position is already aligned.
    """
    align = policy.pad_align
    if align <= 0:
        return []
    short = (-position) % align
    return [
        MInstr("nop", omni_addr=omni_addr, category="pad")
        for _ in range(short)
    ]
