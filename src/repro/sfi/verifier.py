"""Static SFI verification of translated native code.

SFI's safety argument does not rest on trusting the translator: the
loader can *verify* the translated code before running it, by checking a
machine-checkable invariant — exactly the discipline Wahbe et al.
describe and that later systems (NaCl, WebAssembly validators) adopted.

The invariant checked here, per instruction, by linear scan with a
conservative abstract state that resets at every basic-block boundary:

* **dedicated registers** (SFI masks/bases, the global pointer, sp other
  than by small-constant ``addi``) are never written by module code;
* every **store** addresses memory through one of

  - the stack pointer with a small immediate offset (sp is inductively
    in-sandbox: only small-constant updates are permitted, and guard
    zones bound small excursions),
  - the scratch register while it is in the *data-sandboxed* state (the
    last write to it was the ``or at, at, sfi_base`` / masked form of
    the store sequence),
  - the dedicated segment-base register with the masked scratch as
    index (the PPC/SPARC indexed-store form);

* every **indirect jump** goes through the scratch register in the
  *code-sandboxed* state.

Any violation raises :class:`~repro.errors.VerifyError`.  The test suite
checks both directions: all translator output verifies, and hand-built
malicious sequences (store through an unmasked register, indirect jump
to a raw register) are rejected.
"""

from __future__ import annotations

from repro import metrics
from repro.errors import VerifyError
from repro.omnivm.memory import SANDBOX_BASE, SANDBOX_MASK
from repro.sfi.policy import DEFAULT_POLICY, SandboxPolicy
from repro.targets.base import MInstr, TargetSpec
from repro.translators.base import TranslatedModule

_STORE_OPS = frozenset("sb sh sw sfs sfd".split())
_STOREX_OPS = frozenset("sbx shx swx sfsx sfdx".split())

# Abstract states of the scratch register.
_UNKNOWN = 0
_DATA_MASKED = 1     # addr & data_mask   (safe as index off sfi_base)
_DATA_SANDBOXED = 2  # (addr & mask) | base  (safe as direct base)
_CODE_MASKED = 3
_CODE_SANDBOXED = 4


def verify_sfi(module: TranslatedModule,
               policy: SandboxPolicy = DEFAULT_POLICY) -> None:
    """Check the SFI invariant over a translated module."""
    with metrics.stage("verify.sfi"):
        stores, ijumps = _verify_sfi(module, policy)
    if metrics.active():
        metrics.count("verify.sfi.instrs", len(module.instrs))
        metrics.count("verify.sfi.stores_checked", stores)
        metrics.count("verify.sfi.ijumps_checked", ijumps)


def _verify_sfi(module: TranslatedModule,
                policy: SandboxPolicy) -> tuple[int, int]:
    """Linear-scan verification proper; returns (stores checked,
    indirect jumps checked) for the metrics layer."""
    stores_checked = 0
    ijumps_checked = 0
    spec = module.spec
    reserved = spec.reserved
    at = reserved["at"]
    sp = spec.int_map[15]
    protected = {
        reg
        for name, reg in reserved.items()
        if reg >= 0 and name in (
            "sfi_mask", "sfi_base", "sfi_code_base", "sfi_code_mask", "gp",
        )
    }
    block_starts = set(module.omni_to_native.values())
    for instr in module.instrs:
        if instr.target >= 0:
            block_starts.add(instr.target)

    state = _UNKNOWN
    for index, instr in enumerate(module.instrs):
        if index in block_starts:
            state = _UNKNOWN
        self_writes = _int_writes(instr)
        # Rule 1: dedicated registers are immutable.
        for reg in self_writes:
            if reg in protected:
                raise VerifyError(
                    f"native[{index}] {instr}: writes dedicated register "
                    f"r{reg}"
                )
            if reg == sp and not _is_small_sp_update(instr, sp):
                raise VerifyError(
                    f"native[{index}] {instr}: non-constant stack pointer "
                    f"update"
                )
        # Rule 2: stores.
        if instr.op in _STORE_OPS:
            stores_checked += 1
            if instr.rs == sp and -32768 <= instr.imm <= 32767:
                pass
            elif instr.rs == at and state == _DATA_SANDBOXED and instr.imm == 0:
                pass
            else:
                raise VerifyError(
                    f"native[{index}] {instr}: store through unsandboxed "
                    f"address register r{instr.rs}"
                )
        elif instr.op in _STOREX_OPS:
            stores_checked += 1
            base_ok = (
                instr.rs == reserved.get("sfi_base")
                and instr.rd == at
                and state == _DATA_MASKED
            )
            if not base_ok:
                raise VerifyError(
                    f"native[{index}] {instr}: indexed store outside the "
                    f"sandboxed form"
                )
        # Rule 3: indirect control transfers.
        if instr.op in ("jr", "jalr"):
            ijumps_checked += 1
            ra_reg = reserved.get("ra", -1)
            through_sandbox = instr.rs == at and state == _CODE_SANDBOXED
            # Returns through the link register are produced by trusted
            # call instructions; under SFI the translator masks them too,
            # so accept only the sandboxed form when SFI was requested.
            if module.options.sfi:
                if not through_sandbox:
                    raise VerifyError(
                        f"native[{index}] {instr}: unsandboxed indirect "
                        f"jump through r{instr.rs}"
                    )
            elif not (through_sandbox or instr.rs == ra_reg or True):
                pass  # without SFI there is nothing to enforce
        # Update the abstract state of the scratch register.
        state = _next_state(instr, at, reserved, policy, state)
    return stores_checked, ijumps_checked


def _int_writes(instr: MInstr) -> list[int]:
    return [reg for kind, reg in instr.reg_writes() if kind == "r"]


def _is_small_sp_update(instr: MInstr, sp: int) -> bool:
    return (
        instr.op == "addi"
        and instr.rd == sp
        and instr.rs == sp
        and -32768 <= instr.imm <= 32767
    )


def _next_state(instr: MInstr, at: int, reserved: dict, policy: SandboxPolicy,
                state: int) -> int:
    writes = _int_writes(instr)
    if at not in writes:
        return state
    op = instr.op
    mask_reg = reserved.get("sfi_mask", -1)
    base_reg = reserved.get("sfi_base", -1)
    code_base_reg = reserved.get("sfi_code_base", -1)
    code_mask_reg = reserved.get("sfi_code_mask", -1)
    # Masking forms.
    if op == "and" and instr.rd == at and instr.rt == mask_reg:
        return _DATA_MASKED
    if op == "and" and instr.rd == at and instr.rt == code_mask_reg:
        return _CODE_MASKED
    if op == "andi" and instr.rd == at and instr.imm == policy.data_mask:
        return _DATA_MASKED
    if op == "andi" and instr.rd == at and instr.imm == policy.code_mask:
        return _CODE_MASKED
    # Rebasing forms.
    if op == "or" and instr.rd == at and instr.rs == at:
        if instr.rt == base_reg and state == _DATA_MASKED:
            return _DATA_SANDBOXED
        if instr.rt == code_base_reg and state == _CODE_MASKED:
            return _CODE_SANDBOXED
        return _UNKNOWN
    if op == "ori" and instr.rd == at and instr.rs == at:
        if instr.imm == SANDBOX_BASE and state == _DATA_MASKED:
            return _DATA_SANDBOXED
        if instr.imm == policy.code_base and state == _CODE_MASKED:
            return _CODE_SANDBOXED
        return _UNKNOWN
    return _UNKNOWN


def assert_masks_are_sound() -> None:
    """Static consistency of the policy constants (used by tests)."""
    if SANDBOX_BASE & SANDBOX_MASK:
        raise VerifyError("sandbox base overlaps offset mask bits")
    if DEFAULT_POLICY.code_base & DEFAULT_POLICY.code_mask:
        raise VerifyError("code base overlaps code mask bits")
    if DEFAULT_POLICY.code_mask & 0x7:
        raise VerifyError("code mask does not enforce 8-byte alignment")
