"""Static SFI verification of translated native code.

SFI's safety argument does not rest on trusting the translator: the
loader can *verify* the translated code before running it, by checking a
machine-checkable invariant — exactly the discipline Wahbe et al.
describe and that later systems (NaCl, WebAssembly validators) adopted.

Verification is a **worklist dataflow analysis over the recovered
native control-flow graph**, not a linear scan:

1. **CFG recovery.**  Basic-block leaders are the module entry, every
   legal indirect-jump destination (the ``omni_to_native`` address map —
   these are the only places a masked ``jr``/``jalr`` can land), every
   direct branch target, and every instruction after a control transfer
   (skipping the delay slot on delay-slot targets).  Edges follow the
   executor's semantics: a conditional branch has a taken edge and a
   fall-through edge; ``j``/``jal`` have only their target edge;
   ``jr``/``jalr`` have no static successors (their dynamic targets are
   exactly the anchors, which the analysis seeds conservatively).  On
   MIPS/SPARC the delay slot belongs to its branch: the slot's transfer
   function applies to the taken edge always and to the fall-through
   edge unless the branch is annulling.

2. **Abstract state.**  Per program point the analysis tracks

   * the *scratch register* in a flat five-point lattice —
     ``UNKNOWN``, ``DATA_MASKED`` (``addr & data_mask``),
     ``DATA_SANDBOXED`` (``(addr & mask) | base``), ``CODE_MASKED``,
     ``CODE_SANDBOXED`` — the meet of two unequal states is
     ``UNKNOWN``;
   * an *sp-excursion interval* ``[lo, hi]``: the cumulative
     displacement of the stack pointer from its value at block-region
     entry.  The meet is the interval hull, accelerated by widening at
     join points that keep growing; an interval that leaves
     ``±SP_EXCURSION_LIMIT`` becomes unbounded (top).

3. **Fixpoint + check.**  Anchor blocks (indirect-entry points) are
   seeded with the conservative state ``(UNKNOWN, [0, 0])``; states
   propagate along edges with a meet at joins until fixpoint, then a
   final pass re-walks every block — including blocks unreachable from
   any anchor, with the conservative entry state — and enforces, at the
   widest state that can reach each instruction:

   * **dedicated registers** (SFI masks/bases, the global pointer) are
     never written, and sp only by small-constant ``addi``;
   * every **store** addresses memory through sp with a small offset
     *while the excursion interval is bounded* (guard zones around the
     stack absorb bounded drift; the interval check is what makes the
     classic "sp is inductively in-sandbox" argument actually inductive
     — without it a long chain of small ``addi sp`` updates could walk
     sp into the host segment), through the scratch register in the
     data-sandboxed state, or through the dedicated segment base with
     the masked scratch as index (the PPC/SPARC indexed form);
   * every **indirect jump** goes through the scratch register in the
     code-sandboxed state.

   A store or indirect jump is rejected if *any* path — any in-edge at
   the join — can reach it with an unsandboxed state; a sandboxing
   sequence that spans a block boundary (e.g. a guard in a branch delay
   slot) verifies exactly when it is safe on every path.

Residual sp assumption, documented rather than hidden: anchors are
seeded with excursion ``[0, 0]``, i.e. the analysis proves drift bounds
*per anchor region*; chaining regions through indirect jumps is bounded
dynamically (each region nets at most ``SP_EXCURSION_LIMIT``, the
runtime's fuel quota caps the number of regions, and every intervening
segment between the stack's guard zones and the host segment is
unmapped, so drifted sp-relative stores fault long before they can
land somewhere writable).

When the module was translated *without* SFI (``options.sfi`` false)
there is no sandbox claim to check and the verifier enforces nothing:
non-SFI translator output legitimately returns through a raw ``jr``
and stores through unmasked registers.  (An earlier revision carried a
dead ``or True`` arm here that pretended to enforce a return-register
rule; it is gone.)  The CFG is still recovered and the metrics still
flow, so callers may verify unconditionally.

Any violation raises :class:`~repro.errors.VerifyError`.  The test
suite checks both directions: all translator output verifies, and
hand-built malicious sequences are rejected; the sandbox-escape
mutation fuzzer (``repro.difftest.sfi_mutator``) additionally mutates
*verified* modules — dropping/reordering/retargeting guard
instructions, widening sp updates, redirecting store bases, clobbering
dedicated registers — and demands a 100% kill-rate on unsafe mutants
while behavior-preserving mutants keep verifying.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro import metrics
from repro.errors import VerifyError
from repro.omnivm.memory import SANDBOX_BASE, SANDBOX_MASK
from repro.sfi.policy import DEFAULT_POLICY, SP_EXCURSION_LIMIT, SandboxPolicy
from repro.targets.base import MInstr
from repro.translators.base import TranslatedModule

_STORE_OPS = frozenset("sb sh sw sfs sfd".split())
_STOREX_OPS = frozenset("sbx shx swx sfsx sfdx".split())

# Abstract states of the scratch register (flat lattice; meet of two
# different states is _UNKNOWN).
_UNKNOWN = 0
_DATA_MASKED = 1     # addr & data_mask   (safe as index off sfi_base)
_DATA_SANDBOXED = 2  # (addr & mask) | base  (safe as direct base)
_CODE_MASKED = 3
_CODE_SANDBOXED = 4

#: sp-excursion interval bound: one byte beyond the limit represents
#: "unbounded" (top); intervals are clamped there so the domain is
#: finite.
_SP_TOP = SP_EXCURSION_LIMIT + 1

#: Widening threshold: after this many interval changes at one join
#: point, growing bounds jump straight to top so fixpoint iteration
#: terminates quickly on loops with net sp drift.
_WIDEN_AFTER = 4

#: The conservative state every anchor (legal indirect-entry point) is
#: seeded with, and every unreachable block is checked under.
_ENTRY_STATE = (_UNKNOWN, 0, 0)


@dataclass
class SfiAnalysis:
    """Result of the dataflow verification, for metrics / the fuzzer.

    ``in_scratch[i]`` is the scratch-register abstract state with which
    instruction *i* is checked — the meet over every path that can
    reach it (``_UNKNOWN`` for instructions only reachable
    conservatively).  The mutation fuzzer uses it to decide whether
    dropping a guard is actually unsafe at its site."""

    blocks: int = 0
    edges: int = 0
    joins: int = 0
    stores_checked: int = 0
    ijumps_checked: int = 0
    in_scratch: list[int] = field(default_factory=list)


@dataclass
class _Block:
    start: int
    end: int                 # exclusive
    term: int | None = None  # index of the control transfer, if any
    slot: int | None = None  # index of its delay slot, if any
    #: successors as (leader, slot_executes_on_this_edge)
    succs: list[tuple[int, bool]] = field(default_factory=list)


class _Ctx:
    """Per-module constants the transfer and check functions need."""

    __slots__ = ("instrs", "spec", "reserved", "at", "sp", "protected",
                 "policy", "sfi_on")

    def __init__(self, module: TranslatedModule, policy: SandboxPolicy):
        self.instrs = module.instrs
        self.spec = module.spec
        self.reserved = module.spec.reserved
        self.at = self.reserved["at"]
        self.sp = module.spec.int_map[15]
        self.policy = policy
        self.sfi_on = module.options.sfi
        self.protected = {
            reg
            for name, reg in self.reserved.items()
            if reg >= 0 and name in (
                "sfi_mask", "sfi_base", "sfi_code_base", "sfi_code_mask",
                "gp",
            )
        }


def verify_sfi(module: TranslatedModule,
               policy: SandboxPolicy = DEFAULT_POLICY) -> SfiAnalysis:
    """Check the SFI invariant over a translated module.

    Returns the :class:`SfiAnalysis` (CFG shape, per-instruction
    scratch states) so tooling can reuse the dataflow facts."""
    with metrics.stage("verify.sfi"):
        analysis = analyze_sfi(module, policy)
    if metrics.active():
        metrics.count("verify.sfi.instrs", len(module.instrs))
        metrics.count("verify.sfi.stores_checked", analysis.stores_checked)
        metrics.count("verify.sfi.ijumps_checked", analysis.ijumps_checked)
        metrics.count("verify.sfi.blocks", analysis.blocks)
        metrics.count("verify.sfi.edges", analysis.edges)
        metrics.count("verify.sfi.joins", analysis.joins)
    return analysis


def analyze_sfi(module: TranslatedModule,
                policy: SandboxPolicy = DEFAULT_POLICY) -> SfiAnalysis:
    """Run the CFG/worklist verification; raises VerifyError on the
    first violating instruction, otherwise returns the analysis."""
    analysis = SfiAnalysis()
    n = len(module.instrs)
    analysis.in_scratch = [_UNKNOWN] * n
    if n == 0:
        return analysis
    ctx = _Ctx(module, policy)
    blocks, by_leader = _build_cfg(module)
    analysis.blocks = len(blocks)
    analysis.edges = sum(len(b.succs) for b in blocks)

    # Seed every legal indirect-entry point with the conservative state.
    anchors = {module.entry_native}
    anchors.update(module.omni_to_native.values())
    anchors = sorted(a for a in anchors if a in by_leader)

    in_state: dict[int, tuple[int, int, int]] = {a: _ENTRY_STATE
                                                for a in anchors}
    changes: dict[int, int] = {}
    work = deque(anchors)
    queued = set(anchors)
    while work:
        leader = work.popleft()
        queued.discard(leader)
        outs = _flow_block(ctx, by_leader[leader], in_state[leader])
        for succ, out in outs:
            block = by_leader.get(succ)
            if block is None:
                continue
            cur = in_state.get(succ)
            if cur is None:
                in_state[succ] = out
            else:
                analysis.joins += 1
                new = _meet(cur, out)
                if new == cur:
                    continue
                changed = changes.get(succ, 0) + 1
                changes[succ] = changed
                if changed > _WIDEN_AFTER:
                    new = _widen(cur, new)
                in_state[succ] = new
            if succ not in queued:
                queued.add(succ)
                work.append(succ)

    # Final pass: enforce the rules at the fixpoint state; blocks that
    # no anchor reaches are checked under the conservative entry state
    # (hand-built hostile code must not hide behind unreachability).
    for block in blocks:
        state = in_state.get(block.start, _ENTRY_STATE)
        _flow_block(ctx, block, state, analysis=analysis)
    return analysis


def _build_cfg(module: TranslatedModule
               ) -> tuple[list[_Block], dict[int, _Block]]:
    instrs = module.instrs
    n = len(instrs)
    delay = module.spec.delay_slots
    leaders = {0, module.entry_native}
    leaders.update(module.omni_to_native.values())
    for index, instr in enumerate(instrs):
        if instr.target >= 0:
            leaders.add(instr.target)
        if instr.is_branch():
            leaders.add(index + (2 if delay else 1))
    ordered = sorted(l for l in leaders if 0 <= l < n)

    blocks: list[_Block] = []
    for pos, start in enumerate(ordered):
        end = ordered[pos + 1] if pos + 1 < len(ordered) else n
        block = _Block(start, end)
        # The control transfer sits at the block's end; on delay-slot
        # targets the slot normally follows it inside the block.  A
        # branch directly *into* a delay slot (hostile code) splits the
        # slot into its own block; the slot index is still derived from
        # the branch position so its transfer applies to the edges.
        if delay and end - 2 >= start and instrs[end - 2].is_branch():
            block.term, block.slot = end - 2, end - 1
        elif instrs[end - 1].is_branch():
            block.term = end - 1
            if delay and end < n:
                block.slot = end
        if block.term is None:
            if end < n:
                block.succs.append((end, False))
        else:
            term = instrs[block.term]
            if term.op in ("jr", "jalr"):
                # Dynamic targets can only be anchors (the masked jump
                # plus the address map guarantee it); anchors are seeded
                # with the conservative state, so no static edges.
                pass
            elif term.op == "j":
                if 0 <= term.target < n:
                    block.succs.append((term.target, True))
            elif term.op == "jal":
                # A call starts a new anchor region: the callee entry
                # and the return point are both anchors (function entry
                # / call-return entries in the address map) and get the
                # conservative seed; propagating the caller's
                # sp-excursion into the callee would make recursion
                # look like unbounded drift.
                pass
            else:  # conditional branch
                if 0 <= term.target < n:
                    block.succs.append((term.target, True))
                fall = block.term + (2 if delay else 1)
                if fall < n:
                    # An annulled (SPARC) branch skips its slot on the
                    # untaken path.
                    block.succs.append((fall, not term.annul))
        blocks.append(block)
    return blocks, {b.start: b for b in blocks}


def _flow_block(ctx: _Ctx, block: _Block, state: tuple[int, int, int],
                analysis: SfiAnalysis | None = None,
                ) -> list[tuple[int, tuple[int, int, int]]]:
    """Push *state* through *block*; returns the out-state per edge.
    With *analysis* set, also enforce the rules at each instruction."""
    instrs = ctx.instrs
    last = block.term if block.term is not None else block.end - 1
    for index in range(block.start, last + 1):
        instr = instrs[index]
        if analysis is not None:
            _check_instr(ctx, index, instr, state, analysis)
        state = _step(ctx, instr, state)
    state_no_slot = state
    state_with_slot = state
    if block.slot is not None:
        slot_instr = instrs[block.slot]
        if analysis is not None:
            _check_instr(ctx, block.slot, slot_instr, state_no_slot,
                         analysis)
        state_with_slot = _step(ctx, slot_instr, state_no_slot)
    return [
        (succ, state_with_slot if (with_slot and block.slot is not None)
         else state_no_slot)
        for succ, with_slot in block.succs
    ]


def _meet(a: tuple[int, int, int],
          b: tuple[int, int, int]) -> tuple[int, int, int]:
    scratch = a[0] if a[0] == b[0] else _UNKNOWN
    lo = min(a[1], b[1])
    hi = max(a[2], b[2])
    return (scratch, lo, hi)


def _widen(old: tuple[int, int, int],
           new: tuple[int, int, int]) -> tuple[int, int, int]:
    """Jump still-growing interval bounds to top (keeps fixpoint
    iteration linear on loops with net sp drift)."""
    lo = -_SP_TOP if new[1] < old[1] else new[1]
    hi = _SP_TOP if new[2] > old[2] else new[2]
    return (new[0], lo, hi)


def _step(ctx: _Ctx, instr: MInstr,
          state: tuple[int, int, int]) -> tuple[int, int, int]:
    """The transfer function: abstract state after executing *instr*."""
    scratch, lo, hi = state
    writes = _int_writes(instr)
    if ctx.sp in writes:
        if _is_small_sp_update(instr, ctx.sp):
            lo = max(lo + instr.imm, -_SP_TOP)
            hi = min(hi + instr.imm, _SP_TOP)
        else:
            # Rejected by the check pass; keep the state sound anyway.
            lo, hi = -_SP_TOP, _SP_TOP
    if ctx.at in writes:
        scratch = _next_state(instr, ctx.at, ctx.reserved, ctx.policy,
                              scratch)
    return (scratch, lo, hi)


def _check_instr(ctx: _Ctx, index: int, instr: MInstr,
                 state: tuple[int, int, int],
                 analysis: SfiAnalysis) -> None:
    scratch, lo, hi = state
    analysis.in_scratch[index] = scratch
    if not ctx.sfi_on:
        # No sandbox was requested: there is no invariant to enforce
        # (raw stores and raw indirect jumps are legitimate output of
        # the non-SFI translator); see the module docstring.
        return
    # Rule 0: padding is inert.  The padded policy variant inserts
    # category-"pad" instructions at bundle boundaries; anything but a
    # literal nop hiding under that category would be code the
    # remaining rules never vetted as part of a guard sequence.
    if instr.category == "pad" and instr.op != "nop":
        raise VerifyError(
            f"native[{index}] {instr}: pad-category instruction is "
            f"not a nop"
        )
    # Rule 1: dedicated registers are immutable; sp moves only by
    # small constants.
    for reg in _int_writes(instr):
        if reg in ctx.protected:
            raise VerifyError(
                f"native[{index}] {instr}: writes dedicated register "
                f"r{reg}"
            )
        if reg == ctx.sp and not _is_small_sp_update(instr, ctx.sp):
            raise VerifyError(
                f"native[{index}] {instr}: non-constant stack pointer "
                f"update"
            )
    # Rule 2: stores.
    if instr.op in _STORE_OPS:
        analysis.stores_checked += 1
        if instr.rs == ctx.sp and -32768 <= instr.imm <= 32767:
            if lo < -SP_EXCURSION_LIMIT or hi > SP_EXCURSION_LIMIT:
                raise VerifyError(
                    f"native[{index}] {instr}: sp-relative store with "
                    f"unbounded stack pointer excursion"
                )
        elif (instr.rs == ctx.at and scratch == _DATA_SANDBOXED
              and instr.imm == 0):
            pass
        else:
            raise VerifyError(
                f"native[{index}] {instr}: store through unsandboxed "
                f"address register r{instr.rs}"
            )
    elif instr.op in _STOREX_OPS:
        analysis.stores_checked += 1
        base_ok = (
            instr.rs == ctx.reserved.get("sfi_base")
            and instr.rd == ctx.at
            and scratch == _DATA_MASKED
        )
        if not base_ok:
            raise VerifyError(
                f"native[{index}] {instr}: indexed store outside the "
                f"sandboxed form"
            )
    # Rule 3: indirect control transfers.
    if instr.op in ("jr", "jalr"):
        analysis.ijumps_checked += 1
        if not (instr.rs == ctx.at and scratch == _CODE_SANDBOXED):
            raise VerifyError(
                f"native[{index}] {instr}: unsandboxed indirect "
                f"jump through r{instr.rs}"
            )


def _int_writes(instr: MInstr) -> list[int]:
    return [reg for kind, reg in instr.reg_writes() if kind == "r"]


def _is_small_sp_update(instr: MInstr, sp: int) -> bool:
    return (
        instr.op == "addi"
        and instr.rd == sp
        and instr.rs == sp
        and -32768 <= instr.imm <= 32767
    )


def _next_state(instr: MInstr, at: int, reserved: dict,
                policy: SandboxPolicy, state: int) -> int:
    """Scratch-register transfer for an instruction that writes ``at``."""
    op = instr.op
    mask_reg = reserved.get("sfi_mask", -1)
    base_reg = reserved.get("sfi_base", -1)
    code_base_reg = reserved.get("sfi_code_base", -1)
    code_mask_reg = reserved.get("sfi_code_mask", -1)
    # Masking forms.
    if op == "and" and instr.rd == at and instr.rt == mask_reg:
        return _DATA_MASKED
    if op == "and" and instr.rd == at and instr.rt == code_mask_reg:
        return _CODE_MASKED
    if op == "andi" and instr.rd == at and instr.imm == policy.data_mask:
        return _DATA_MASKED
    if op == "andi" and instr.rd == at and instr.imm == policy.code_mask:
        return _CODE_MASKED
    # Rebasing forms.
    if op == "or" and instr.rd == at and instr.rs == at:
        if instr.rt == base_reg and state == _DATA_MASKED:
            return _DATA_SANDBOXED
        if instr.rt == code_base_reg and state == _CODE_MASKED:
            return _CODE_SANDBOXED
        return _UNKNOWN
    if op == "ori" and instr.rd == at and instr.rs == at:
        # Compare against the *policy's* data base, not the default
        # layout constant — under a scaled-down policy (the model
        # checker's small-model sweep) the two differ, and the
        # hardcoded constant made replay disagree with the policy the
        # caller asked about.
        if instr.imm == policy.data_base and state == _DATA_MASKED:
            return _DATA_SANDBOXED
        if instr.imm == policy.code_base and state == _CODE_MASKED:
            return _CODE_SANDBOXED
        return _UNKNOWN
    return _UNKNOWN


# Public aliases of the scratch-register lattice for tooling (the
# sandbox-escape mutation fuzzer, tests).
SCRATCH_UNKNOWN = _UNKNOWN
SCRATCH_DATA_MASKED = _DATA_MASKED
SCRATCH_DATA_SANDBOXED = _DATA_SANDBOXED
SCRATCH_CODE_MASKED = _CODE_MASKED
SCRATCH_CODE_SANDBOXED = _CODE_SANDBOXED


def scratch_step(instr: MInstr, spec, policy: SandboxPolicy,
                 state: int) -> int:
    """Public scratch-register transfer function for one instruction.

    The mutation fuzzer replays this over a mutated guard chain to
    predict — independently of the full CFG pass — whether the chain
    still establishes the state its consumer needs (some mutations are
    genuinely behavior-preserving, e.g. dropping the address-forming
    ``mov``/``addi`` before the mask only redirects *which* in-sandbox
    address is written)."""
    at = spec.reserved["at"]
    if at in _int_writes(instr):
        return _next_state(instr, at, spec.reserved, policy, state)
    return state


def assert_masks_are_sound() -> None:
    """Static consistency of the policy constants (used by tests)."""
    if SANDBOX_BASE & SANDBOX_MASK:
        raise VerifyError("sandbox base overlaps offset mask bits")
    if DEFAULT_POLICY.code_base & DEFAULT_POLICY.code_mask:
        raise VerifyError("code base overlaps code mask bits")
    if DEFAULT_POLICY.code_mask & 0x7:
        raise VerifyError("code mask does not enforce 8-byte alignment")
