"""SFI sandbox policy: segment layout, masks, dedicated registers.

Software fault isolation (Wahbe et al., SOSP '93 — the technology
Omniware builds on) confines a module by rewriting every *unsafe* store
and indirect control transfer:

* **stores** are forced into the module's data sandbox by clearing the
  segment bits of the effective address and OR-ing in the sandbox base:

  .. code-block:: none

      dedicated = (addr & DATA_OFFSET_MASK) | DATA_SANDBOX_BASE
      store value, [dedicated]

  A wild address is not *detected*, it is *redirected* somewhere the
  module is allowed to write (possibly its own data — the module can
  only hurt itself).  This is the cheap "sandboxing" variant the paper
  uses; the check-and-trap variant costs more and is not needed for
  safety, only for debugging.

* **indirect jumps** (``jr``/``jalr``) are masked into the code segment
  *and* onto an 8-byte instruction boundary in one AND (the offset mask
  has the low 3 bits clear), then OR-ed with the code base.  Combined
  with the translator's module-address→native-address map, a corrupted
  function pointer can reach only instruction boundaries of the module's
  own translated code.

The masks live in **dedicated registers** on the RISC targets (reserved
by the runtime; see each target's ``reserved`` table) so the sequence is
two ALU instructions; x86 uses 32-bit immediates instead of dedicated
registers.  Because the dedicated registers are never written by any
translated module instruction (the SFI verifier checks this), the
sandbox invariant holds at *every* instruction, even if a signal or
thread switch lands mid-sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.omnivm.memory import CODE_BASE, SANDBOX_BASE, SANDBOX_MASK

#: Indirect-jump mask: stay within the code segment's 16 MiB *and* on an
#: 8-byte OmniVM instruction boundary.
CODE_OFFSET_MASK = 0x00FFFFF8

#: The sentinel "return to host" address: in-segment and aligned, so it
#: survives SFI masking; the executor halts when control reaches it.
RETURN_SENTINEL = CODE_BASE | CODE_OFFSET_MASK

#: Maximum cumulative stack-pointer excursion (bytes, either direction)
#: the verifier will accept on any path before declaring sp potentially
#: out of the guard zones.  The stack segment is 1 MiB and sits more
#: than 15 MiB from the nearest mapped segment on either side, so a
#: 1 MiB drift plus the ±32 KiB store offsets stays strictly inside
#: unmapped guard pages — a wild sp-relative store faults, it cannot
#: land in another segment.
SP_EXCURSION_LIMIT = 1 << 20


@dataclass(frozen=True)
class SandboxPolicy:
    """The constants a translator needs to emit SFI sequences."""

    data_base: int = SANDBOX_BASE
    data_mask: int = SANDBOX_MASK
    code_base: int = CODE_BASE
    code_mask: int = CODE_OFFSET_MASK

    def sandbox_data_address(self, address: int) -> int:
        """What the masked store address becomes (reference semantics)."""
        return (address & self.data_mask) | self.data_base

    def sandbox_code_address(self, address: int) -> int:
        return (address & self.code_mask) | self.code_base

    def data_contains(self, address: int) -> bool:
        return (address & ~self.data_mask) == self.data_base

    def code_contains(self, address: int) -> bool:
        return (address & ~(self.code_mask | 0x7)) == self.code_base


DEFAULT_POLICY = SandboxPolicy()
