"""SFI sandbox policy: segment layout, masks, dedicated registers.

Software fault isolation (Wahbe et al., SOSP '93 — the technology
Omniware builds on) confines a module by rewriting every *unsafe* store
and indirect control transfer:

* **stores** are forced into the module's data sandbox by clearing the
  segment bits of the effective address and OR-ing in the sandbox base:

  .. code-block:: none

      dedicated = (addr & DATA_OFFSET_MASK) | DATA_SANDBOX_BASE
      store value, [dedicated]

  A wild address is not *detected*, it is *redirected* somewhere the
  module is allowed to write (possibly its own data — the module can
  only hurt itself).  This is the cheap "sandboxing" variant the paper
  uses; the check-and-trap variant costs more and is not needed for
  safety, only for debugging.

* **indirect jumps** (``jr``/``jalr``) are masked into the code segment
  *and* onto an 8-byte instruction boundary in one AND (the offset mask
  has the low 3 bits clear), then OR-ed with the code base.  Combined
  with the translator's module-address→native-address map, a corrupted
  function pointer can reach only instruction boundaries of the module's
  own translated code.

The masks live in **dedicated registers** on the RISC targets (reserved
by the runtime; see each target's ``reserved`` table) so the sequence is
two ALU instructions; x86 uses 32-bit immediates instead of dedicated
registers.  Because the dedicated registers are never written by any
translated module instruction (the SFI verifier checks this), the
sandbox invariant holds at *every* instruction, even if a signal or
thread switch lands mid-sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LinkError
from repro.omnivm.memory import CODE_BASE, SANDBOX_BASE, SANDBOX_MASK

#: Indirect-jump mask: stay within the code segment's 16 MiB *and* on an
#: 8-byte OmniVM instruction boundary.
CODE_OFFSET_MASK = 0x00FFFFF8

#: The sentinel "return to host" address: in-segment and aligned, so it
#: survives SFI masking; the executor halts when control reaches it.
RETURN_SENTINEL = CODE_BASE | CODE_OFFSET_MASK

#: Instruction index of the sentinel's slot — the *last* aligned slot of
#: the code segment.  Because the sentinel is a fixed point of
#: ``sandbox_code_address`` (in-segment and aligned by construction), a
#: real instruction laid out at this index would be unreachable: any
#: masked transfer to it halts the machine instead.  The linkers and the
#: translator refuse such layouts via :func:`check_sentinel_clearance`.
SENTINEL_SLOT_INDEX = (RETURN_SENTINEL - CODE_BASE) // 8

#: Maximum cumulative stack-pointer excursion (bytes, either direction)
#: the verifier will accept on any path before declaring sp potentially
#: out of the guard zones.  The stack segment is 1 MiB and sits more
#: than 15 MiB from the nearest mapped segment on either side, so a
#: 1 MiB drift plus the ±32 KiB store offsets stays strictly inside
#: unmapped guard pages — a wild sp-relative store faults, it cannot
#: land in another segment.
SP_EXCURSION_LIMIT = 1 << 20


@dataclass(frozen=True)
class SandboxPolicy:
    """The constants a translator needs to emit SFI sequences.

    ``pad_align`` selects the instruction-padding/alignment variant
    (Emamdoost & McCamant, "The Effect of Instruction Padding on SFI
    Overhead"): when non-zero, the translator pads with ``nop`` so that
    every legal indirect-entry point begins at a native instruction
    index that is a multiple of ``pad_align`` — the bundle discipline
    NaCl-style sandboxes use so checked regions start on fixed
    boundaries.  ``0`` (the default) is the paper's unpadded layout.
    The padding ablation in ``benchmarks/bench_sfi_verifier.py``
    measures what the variant costs per target.
    """

    data_base: int = SANDBOX_BASE
    data_mask: int = SANDBOX_MASK
    code_base: int = CODE_BASE
    code_mask: int = CODE_OFFSET_MASK
    pad_align: int = 0

    def sandbox_data_address(self, address: int) -> int:
        """What the masked store address becomes (reference semantics)."""
        return (address & self.data_mask) | self.data_base

    def sandbox_code_address(self, address: int) -> int:
        return (address & self.code_mask) | self.code_base

    def data_contains(self, address: int) -> bool:
        return (address & ~self.data_mask) == self.data_base

    def code_contains(self, address: int) -> bool:
        """Alignment-respecting containment: the address lies in the
        code segment *and* on an instruction boundary.

        The code mask keeps the low 3 bits clear, so ``~code_mask``
        covers them: an unaligned address is *not* contained.  (An
        earlier revision accepted unaligned low bits via ``| 0x7``,
        which disagreed with :meth:`sandbox_code_address` — a target
        could be "contained" yet be changed by the masking sequence.
        ``code_contains`` is now exactly the set of fixed points of
        ``sandbox_code_address``, which is what the template model
        checker proves jump templates land in.)"""
        return (address & ~self.code_mask) == self.code_base


DEFAULT_POLICY = SandboxPolicy()

#: The padding ablation variant: indirect-entry points aligned to 8
#: native-instruction bundles (roughly a 32-byte NaCl bundle at 4-byte
#: encodings).
PADDED_POLICY = SandboxPolicy(pad_align=8)


def check_sentinel_clearance(base_index: int, num_instrs: int) -> None:
    """Refuse layouts whose text reaches the return-sentinel slot.

    ``RETURN_SENTINEL = CODE_BASE | CODE_OFFSET_MASK`` deliberately
    collides with the last aligned slot of the code segment: the
    executor halts there, so an instruction laid out at that index
    could never be entered through a masked transfer, and a return
    that *should* halt would instead appear to target real code.
    Called by the static linker, the dynamic link-loader, and the
    translator (link/load time), with the translation unit's absolute
    instruction range."""
    if num_instrs <= 0:
        return
    last = base_index + num_instrs - 1
    if last >= SENTINEL_SLOT_INDEX:
        raise LinkError(
            f"module text reaches the return-sentinel slot: instruction "
            f"index {last} >= {SENTINEL_SLOT_INDEX} (omni address "
            f"{RETURN_SENTINEL:#010x} is reserved as the return "
            f"sentinel and must stay unmapped)"
        )
