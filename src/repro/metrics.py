"""Pipeline metrics: counters and timers for the mobile-code pipeline.

The paper's evaluation rests on precise per-stage measurements — how long
load-time translation takes, how many SFI sequences the translator
inlines, how many of them the module actually executes, how much the
code expands (Figure 1).  This module is the measurement substrate: a
tiny counter/timer registry threaded through the compiler front end, the
optimizer, the code generator, the verifiers, the translators, and both
execution engines.

Design constraints:

* **zero cost when idle** — every instrumentation point first asks
  :func:`active`, which is one global list check, so the hot paths
  (translation, simulation) pay one ``if`` when nobody is measuring;
* **no global mutable results** — measurements accumulate into an
  explicitly installed :class:`MetricsCollector`; nesting is allowed
  (an :class:`~repro.engine.Engine` collector and an ad-hoc one can be
  active at once) and every active collector observes every event;
* **no dependencies** — this module imports only the standard library,
  so any layer of the package may import it without cycles.

Usage::

    from repro import metrics

    collector = metrics.MetricsCollector()
    with metrics.collect(collector):
        program = compile_and_link([source])
        run_on_target(program, "mips")
    print(collector.render())

Stage names are dotted paths (``frontend.lex``, ``translate``,
``verify.sfi``, ``execute``); counters likewise (``translate.native_instrs``,
``execute.sfi.dynamic``, ``cache.hit``, ``cache.disk_reject``, and the
module-hosting service's ``service.request`` / ``service.fallback`` /
``service.retry`` / ``service.timeout`` family).  The threaded-code
execution engines add ``execute.predecode_ms`` (wall milliseconds spent
predecoding a program into closures), ``execute.blocks`` (basic blocks
dispatched), ``execute.fused`` (superinstructions executed), and the
cache's ``cache.predecode_hit`` / ``cache.predecode_miss`` pair for the
in-memory predecode side table.  The CFG-based SFI verifier reports its
graph shape per verification — ``verify.sfi.blocks`` /
``verify.sfi.edges`` / ``verify.sfi.joins`` (meet operations at join
points) alongside the existing ``verify.sfi.instrs`` /
``verify.sfi.stores_checked`` / ``verify.sfi.ijumps_checked`` — and the
sandbox-escape mutation fuzzer adds the ``difftest.sfi.*`` family
(``modules``, ``mutants``, ``killed``, ``survivors``, ``accepted``,
``overtight``, ``shrink_checks``).  See DESIGN.md §"Engine, cache and
metrics" for the full vocabulary.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "MetricsCollector",
    "active",
    "collect",
    "count",
    "current",
    "stage",
]


class MetricsCollector:
    """Accumulates named counters and per-stage wall-clock timings.

    Recording is thread-safe (one internal lock guards the read-modify-
    write updates), so a :class:`repro.service.ModuleHost` worker pool
    can share the engine's collector without losing increments."""

    __slots__ = ("counters", "stage_seconds", "stage_calls", "_lock")

    def __init__(self) -> None:
        #: name -> accumulated integer count
        self.counters: dict[str, int] = {}
        #: stage name -> accumulated wall seconds
        self.stage_seconds: dict[str, float] = {}
        #: stage name -> number of times the stage ran
        self.stage_calls: dict[str, int] = {}
        self._lock = threading.RLock()

    # -- recording ------------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def record_stage(self, name: str, seconds: float) -> None:
        with self._lock:
            self.stage_seconds[name] = (
                self.stage_seconds.get(name, 0.0) + seconds
            )
            self.stage_calls[name] = self.stage_calls.get(name, 0) + 1

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_stage(name, time.perf_counter() - start)

    def merge(self, other: "MetricsCollector") -> None:
        """Fold *other*'s measurements into this collector."""
        with self._lock:
            for name, amount in other.counters.items():
                self.count(name, amount)
            for name, seconds in other.stage_seconds.items():
                self.stage_seconds[name] = (
                    self.stage_seconds.get(name, 0.0) + seconds
                )
                self.stage_calls[name] = (
                    self.stage_calls.get(name, 0)
                    + other.stage_calls.get(name, 0)
                )

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.stage_seconds.clear()
            self.stage_calls.clear()

    # -- derived quantities ---------------------------------------------------

    def expansion_ratio(self) -> float | None:
        """Static code expansion: native instructions per OmniVM
        instruction over everything translated while collecting."""
        omni = self.counters.get("translate.omni_instrs", 0)
        native = self.counters.get("translate.native_instrs", 0)
        return (native / omni) if omni else None

    def dynamic_expansion_ratio(self) -> float | None:
        """Dynamic expansion: native instructions retired per OmniVM
        instruction the same program retires on the reference VM (needs
        both engines to have run while collecting)."""
        omni = self.counters.get("execute.omni.instret", 0)
        native = self.counters.get("execute.native.instret", 0)
        return (native / omni) if omni else None

    # -- export ---------------------------------------------------------------

    def to_dict(self) -> dict:
        payload: dict = {
            "counters": dict(sorted(self.counters.items())),
            "stage_seconds": dict(sorted(self.stage_seconds.items())),
            "stage_calls": dict(sorted(self.stage_calls.items())),
        }
        ratio = self.expansion_ratio()
        if ratio is not None:
            payload["expansion_ratio"] = ratio
        dyn = self.dynamic_expansion_ratio()
        if dyn is not None:
            payload["dynamic_expansion_ratio"] = dyn
        return payload

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def render(self) -> str:
        """Human-readable report (the ``--stats`` output)."""
        lines = []
        if self.stage_seconds:
            lines.append("stage timings:")
            width = max(len(name) for name in self.stage_seconds)
            for name in sorted(self.stage_seconds):
                seconds = self.stage_seconds[name]
                calls = self.stage_calls.get(name, 1)
                lines.append(
                    f"  {name.ljust(width)}  {seconds * 1e3:10.3f} ms"
                    f"  ({calls} call{'s' if calls != 1 else ''})"
                )
        if self.counters:
            lines.append("counters:")
            width = max(len(name) for name in self.counters)
            for name in sorted(self.counters):
                lines.append(f"  {name.ljust(width)}  {self.counters[name]}")
        ratio = self.expansion_ratio()
        if ratio is not None:
            lines.append(f"static expansion ratio:  {ratio:.2f}")
        dyn = self.dynamic_expansion_ratio()
        if dyn is not None:
            lines.append(f"dynamic expansion ratio: {dyn:.2f}")
        return "\n".join(lines) if lines else "(no measurements)"


#: Stack of active collectors; module-level so instrumentation points can
#: test "anyone listening?" with one truthiness check.
_ACTIVE: list[MetricsCollector] = []


def active() -> bool:
    """True when at least one collector is installed."""
    return bool(_ACTIVE)


def current() -> MetricsCollector | None:
    """The innermost active collector, or None."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def collect(collector: MetricsCollector | None = None
            ) -> Iterator[MetricsCollector]:
    """Install *collector* (a fresh one when omitted) for the duration
    of the ``with`` block and yield it."""
    collector = collector or MetricsCollector()
    _ACTIVE.append(collector)
    try:
        yield collector
    finally:
        _ACTIVE.remove(collector)


def count(name: str, amount: int = 1) -> None:
    """Add *amount* to counter *name* on every active collector."""
    for collector in _ACTIVE:
        collector.count(name, amount)


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Time the enclosed block as pipeline stage *name* (no-op when no
    collector is active)."""
    if not _ACTIVE:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        for collector in _ACTIVE:
            collector.record_stage(name, elapsed)
