"""The unified Engine facade over the mobile-code pipeline.

Historically callers juggled three free functions —
``compile_and_link`` / ``load_for_target`` / ``run_on_target`` — plus a
bag of options objects.  :class:`Engine` packages the whole
compile → verify → translate → execute pipeline behind one object that
owns the three cross-cutting concerns the free functions could not:

* a **target** and **profile** chosen once instead of threaded through
  every call (``target=None`` means the reference interpreter, exactly
  as a host without a translator would run the module);
* a content-addressed **translation cache**
  (:class:`~repro.cache.TranslationCache`) shared across every load, so
  re-running a module skips verification and translation entirely;
* a **metrics collector** (:class:`~repro.metrics.MetricsCollector`)
  that accumulates per-stage wall times, instruction counts, SFI check
  counts, and expansion ratios across everything the engine does.

Quick start::

    from repro import Engine, MOBILE_SFI

    engine = Engine(target="mips", profile=MOBILE_SFI)
    program = engine.compile("int main() { emit_int(42); return 0; }")
    code, module = engine.run(program)       # translated, SFI on
    code, module = engine.run(program)       # warm: served from cache
    print(engine.stats_text())               # timings, counters, ratios

The legacy free functions remain as thin delegating shims with
unchanged behaviour.
"""

from __future__ import annotations

import warnings
from contextlib import nullcontext
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Sequence

from repro import metrics
from repro.cache import TranslationCache
from repro.compiler import CompileOptions, compile_and_link, compile_to_object
from repro.native.profiles import MOBILE_SFI, PROFILES
from repro.omnivm.linker import LinkedProgram
from repro.omnivm.objfile import ObjectModule
from repro.runtime.host import Host
from repro.runtime.linker import (
    LinkedImage,
    ModuleDef,
    ModuleRegistry,
    dynamic_link,
)
from repro.runtime.loader import LoadedModule, load_module
from repro.runtime.native_loader import NativeModule
from repro.sfi.policy import DEFAULT_POLICY, SandboxPolicy
from repro.translators import ARCHITECTURES, translate
from repro.translators.base import TranslatedModule, TranslationOptions

if TYPE_CHECKING:  # pragma: no cover
    from repro.service import ModuleHost

#: Pseudo-target naming the reference interpreter.
INTERPRETER = "omnivm"


@dataclass(frozen=True)
class RunConfig:
    """How to execute a load/run: everything that is not *what* to run.

    Replaces the former kwarg sprawl on :meth:`Engine.load` /
    :meth:`Engine.run` (``fuel=``, ``segment_size=``, ``engine=``,
    ``verify=``, ``host=``); those keywords still work through a
    deprecation shim.  ``None`` fields mean "the engine's / loader's
    default".
    """

    fuel: int | None = None
    segment_size: int | None = None
    engine: str | None = None
    verify: bool = True
    host: Host | None = None

    def merged(self, **overrides) -> "RunConfig":
        """A copy with the given fields replaced (unknown names raise)."""
        known = {f.name for f in fields(RunConfig)}
        unknown = set(overrides) - known
        if unknown:
            raise TypeError(f"unknown RunConfig fields: {sorted(unknown)}")
        return replace(self, **overrides)


#: Legacy Engine.load/run keywords the deprecation shim accepts.
_LEGACY_KEYS = ("host", "verify", "fuel", "segment_size", "engine")


def _coerce_config(method: str, config, legacy: dict) -> RunConfig:
    """Fold deprecated keyword arguments into a :class:`RunConfig`.

    Accepts a :class:`~repro.runtime.host.Host` where the config is
    expected (the pre-RunConfig positional ``host`` slot).  A field set
    both on the config *and* as a legacy keyword is a programming error
    — the old behaviour let the keyword silently win — and raises
    :class:`TypeError`."""
    if isinstance(config, Host):
        legacy.setdefault("host", config)
        config = None
    unknown = set(legacy) - set(_LEGACY_KEYS)
    if unknown:
        raise TypeError(
            f"{method}() got unexpected keyword arguments {sorted(unknown)}"
        )
    if legacy:
        if config is not None:
            defaults = RunConfig()
            conflicts = sorted(
                key for key in legacy
                if getattr(config, key) != getattr(defaults, key)
            )
            if conflicts:
                raise TypeError(
                    f"{method}() got {', '.join(f'{k}=' for k in conflicts)}"
                    f" both in config= and as keyword argument(s); set "
                    f"each field in one place only"
                )
        warnings.warn(
            f"{method}({', '.join(sorted(legacy))}=...) is deprecated; "
            f"pass config=RunConfig(...)",
            DeprecationWarning, stacklevel=3,
        )
        config = (config or RunConfig()).merged(**legacy)
    return config or RunConfig()


class Engine:
    """One object fronting the compile → load → translate → run pipeline.

    Parameters
    ----------
    target:
        Default execution target: one of
        :data:`~repro.translators.ARCHITECTURES`, ``"omnivm"``, or
        ``None`` (both mean the reference interpreter).  Every method
        taking a ``target`` argument can override it per call.
    profile:
        Default :class:`TranslationOptions` — an options value or a
        profile name from :data:`repro.native.profiles.PROFILES`
        (e.g. ``"mobile-sfi"``).  Defaults to :data:`MOBILE_SFI`.
    cache:
        A :class:`TranslationCache` to share, ``None`` for a fresh
        private cache, or ``False`` to disable caching.
    compile_options:
        Default :class:`CompileOptions` for :meth:`compile`.
    collect_metrics:
        When True (default) the engine owns a
        :class:`~repro.metrics.MetricsCollector` active during every
        engine operation; see :meth:`stats`.
    execution_engine:
        Default execution loop: ``"auto"`` (the default — the superblock
        JIT tier on the interpreter, the threaded engine on native
        targets), ``"jit"`` (same tiering, named explicitly),
        ``"threaded"`` (predecoded threaded-code engine with block-level
        fuel accounting), or ``"legacy"`` (per-instruction dispatch).
        :meth:`load` and :meth:`run` accept a per-call ``engine``
        override via :class:`RunConfig`.
    """

    def __init__(
        self,
        target: str | None = None,
        profile: TranslationOptions | str = MOBILE_SFI,
        cache: "TranslationCache | None | bool" = None,
        compile_options: CompileOptions | None = None,
        collect_metrics: bool = True,
        execution_engine: str = "auto",
        registry: ModuleRegistry | None = None,
    ):
        from repro.runtime.loader import _check_engine

        _check_engine(execution_engine)
        self.execution_engine = execution_engine
        self.target = target
        if isinstance(profile, str):
            profile = PROFILES[profile]
        self.profile = profile
        if cache is False:
            self.cache: TranslationCache | None = None
        elif cache is None or cache is True:
            self.cache = TranslationCache()
        else:
            self.cache = cache
        self.compile_options = compile_options or CompileOptions()
        self.metrics: metrics.MetricsCollector | None = (
            metrics.MetricsCollector() if collect_metrics else None
        )
        self.registry = registry if registry is not None else ModuleRegistry()

    # -- internals ------------------------------------------------------------

    def _collecting(self):
        if self.metrics is None:
            return nullcontext()
        return metrics.collect(self.metrics)

    def _resolve_target(self, target: str | None) -> str:
        target = target if target is not None else self.target
        return INTERPRETER if target is None else target

    def _resolve_options(
        self, options: TranslationOptions | str | None
    ) -> TranslationOptions:
        if options is None:
            return self.profile
        if isinstance(options, str):
            return PROFILES[options]
        return options

    # -- pipeline stages ------------------------------------------------------

    def compile(
        self,
        sources: str | Sequence[str],
        options: CompileOptions | None = None,
        entry_symbol: str = "main",
        extra_objects: list[ObjectModule] | None = None,
    ) -> LinkedProgram:
        """Compile MiniC translation unit(s) and link them into a
        mobile module (accepts one source string or a sequence)."""
        if isinstance(sources, str):
            sources = [sources]
        with self._collecting():
            return compile_and_link(
                list(sources),
                options or self.compile_options,
                entry_symbol=entry_symbol,
                extra_objects=extra_objects,
            )

    def translate(
        self,
        program: LinkedProgram,
        target: str | None = None,
        options: TranslationOptions | str | None = None,
    ) -> TranslatedModule:
        """Load-time translation for *target* (cache-aware).

        Raises :class:`~repro.errors.UnknownArchitectureError` when the
        resolved target has no translator (including ``"omnivm"`` — the
        interpreter is not a translation target).
        """
        arch = self._resolve_target(target)
        opts = self._resolve_options(options)
        with self._collecting():
            if getattr(program, "modules", None):
                # Multi-module image: per-module translation units,
                # individually cached and SFI-verified, then spliced
                # (see repro.runtime.linker.translate_image).
                from repro.omnivm.verifier import verify_program
                from repro.runtime.linker import translate_image

                verify_program(program)
                return translate_image(program, arch, opts,
                                       cache=self.cache)
            from repro.omnivm.verifier import verify_program
            from repro.sfi.verifier import verify_sfi

            def produce() -> TranslatedModule:
                verify_program(program)
                translated = translate(program, arch, opts)
                # Verify BEFORE the translation enters the shared
                # cache: cache hits everywhere else (load_for_target,
                # serve) skip verification on the contract that cached
                # code was verified when it was admitted.  Admitting an
                # unverified translation here would silently launder it
                # past the SFI verifier on the next load.
                verify_sfi(translated)
                return translated

            if self.cache is not None:
                # Single-flight: a stampede of concurrent loads for the
                # same uncached content translates exactly once.
                return self.cache.translate_once(program, arch, opts,
                                                 produce)
            return produce()

    def load(
        self,
        program: LinkedProgram,
        target: str | None = None,
        options: TranslationOptions | str | None = None,
        config: RunConfig | None = None,
        **legacy,
    ) -> LoadedModule | NativeModule:
        """Verify and load *program* for execution: a
        :class:`NativeModule` for a translated target, a
        :class:`LoadedModule` for the interpreter.

        *config* carries the execution parameters (:class:`RunConfig`:
        fuel, segment size, execution engine, verification toggle, host
        services).  The former ``host=``/``verify=``/``fuel=``/
        ``segment_size=``/``engine=`` keywords still work via a
        deprecation shim (a bare :class:`~repro.runtime.host.Host` in
        the config slot is treated as ``host=`` for old positional
        callers).
        """
        config = _coerce_config("Engine.load", config, legacy)
        arch = self._resolve_target(target)
        with self._collecting():
            return load_module(
                program,
                None if arch == INTERPRETER else arch,
                options=self._resolve_options(options),
                host=config.host,
                verify=config.verify,
                fuel=config.fuel,
                segment_size=config.segment_size,
                engine=config.engine or self.execution_engine,
                cache=self.cache,
            )

    def run(
        self,
        program: "LinkedProgram | str | Sequence[str]",
        target: str | None = None,
        options: TranslationOptions | str | None = None,
        entry: str | None = None,
        config: RunConfig | None = None,
        **legacy,
    ) -> tuple[int, LoadedModule | NativeModule]:
        """Compile (when given source text), load, and execute; returns
        ``(exit code, loaded module)``.  The module exposes ``.host``
        for the program's emitted output.

        *config* is forwarded to :meth:`load` (same deprecation shim for
        the old keyword arguments), so a bounded (or unverified, or
        legacy-loop) run no longer needs to hand-roll the
        compile/load/run sequence.
        """
        config = _coerce_config("Engine.run", config, legacy)
        if not isinstance(program, LinkedProgram):
            program = self.compile(program)
        module = self.load(program, target, options, config=config)
        with self._collecting():
            code = module.run(entry)
        return code, module

    # -- dynamic linking ------------------------------------------------------

    def register_module(
        self,
        name: str,
        module: "ObjectModule | str",
        policy: SandboxPolicy = DEFAULT_POLICY,
    ) -> ModuleDef:
        """Register (or reload) a named module in the engine's
        :class:`~repro.runtime.linker.ModuleRegistry`.

        *module* is an :class:`~repro.omnivm.objfile.ObjectModule` or
        MiniC source text (compiled as one translation unit; ``extern``
        declarations become imports).  Reloading bumps the module's
        epoch and drops the previous definition's cached translation
        chunks, so the next link translates the new content while other
        modules keep hitting the cache.
        """
        if isinstance(module, str):
            options = replace(self.compile_options, module_name=name)
            with self._collecting():
                module = compile_to_object(module, options)
        previous = self.registry.lookup(name)
        definition = self.registry.register(name, module, policy)
        if previous is not None:
            self._drop_chunks(previous)
        return definition

    def revoke_module(self, name: str) -> ModuleDef:
        """Revoke *name*: new links against it fail with
        :class:`~repro.errors.ModuleRevokedError`, its cached
        translation chunks are dropped, and in-flight executions of
        already-linked images run to completion (their code was spliced
        at link time)."""
        definition = self.registry.revoke(name)
        self._drop_chunks(definition)
        return definition

    def _drop_chunks(self, definition: ModuleDef) -> None:
        if self.cache is None:
            return
        for digest in definition.chunk_digests:
            self.cache.invalidate(digest=digest)
        definition.chunk_digests.clear()

    def link_modules(
        self,
        modules: Sequence[str],
        entry: str = "main",
        name: str | None = None,
    ) -> LinkedImage:
        """Dynamically link registered modules (plus their import
        closure) into a :class:`~repro.runtime.linker.LinkedImage`."""
        with self._collecting():
            return dynamic_link(self.registry, list(modules),
                                entry_symbol=entry, name=name)

    def load_program(
        self,
        modules: Sequence["str | ObjectModule"],
        entry: str = "main",
        target: str | None = None,
        options: TranslationOptions | str | None = None,
        config: RunConfig | None = None,
    ) -> LoadedModule | NativeModule:
        """Link a multi-module program and load it for execution.

        *modules* mixes registered module names and
        :class:`~repro.omnivm.objfile.ObjectModule` values (the latter
        are registered under their object name first).  The listed
        modules are the link roots; imports pull in the rest of the
        closure from the registry.  The returned module runs with
        cross-module calls resolved through SFI-checked trampolines.
        """
        roots: list[str] = []
        for module in modules:
            if isinstance(module, ObjectModule):
                self.register_module(module.name, module)
                roots.append(module.name)
            else:
                roots.append(module)
        image = self.link_modules(roots, entry=entry)
        return self.load(image, target, options, config=config)

    def serve(self, processes: int | None = None, **kwargs):
        """Create a module-hosting service fronting this engine.

        With ``processes=None`` (default): a threaded
        :class:`~repro.service.ModuleHost` — worker threads,
        per-request deadlines and quotas, retry with backoff, and
        interpreter fallback.  With ``processes=N``: a
        :class:`~repro.service_router.ShardedModuleHost` routing over
        *N* worker processes with consistent-hash cache affinity and
        identical request/response semantics (``workers=`` then means
        threads *per process*).  Remaining keyword arguments are
        forwarded to the chosen host's constructor.  Use as a context
        manager (``with engine.serve(workers=4) as host:``) or call
        ``start()`` / ``stop()`` explicitly."""
        if processes is not None:
            from repro.service_router import ShardedModuleHost

            return ShardedModuleHost(self, processes=processes, **kwargs)
        from repro.service import ModuleHost

        return ModuleHost(self, **kwargs)

    # -- measurement ----------------------------------------------------------

    def stats(self) -> dict:
        """Accumulated pipeline metrics plus cache counters as a
        JSON-ready dict."""
        payload: dict = (
            self.metrics.to_dict() if self.metrics is not None
            else {"counters": {}, "stage_seconds": {}, "stage_calls": {}}
        )
        if self.cache is not None:
            payload["cache"] = self.cache.stats().to_dict()
            payload["cache_entries"] = len(self.cache)
        return payload

    def stats_text(self) -> str:
        """Human-readable metrics report (the CLI's ``--stats`` body)."""
        lines = []
        if self.metrics is not None:
            lines.append(self.metrics.render())
        if self.cache is not None:
            stats = self.cache.stats()
            lines.append(
                f"translation cache: {stats.hits} hits "
                f"({stats.disk_hits} from disk), {stats.misses} misses, "
                f"{stats.evictions} evictions, {len(self.cache)} resident"
            )
        return "\n".join(lines)

    def reset_stats(self) -> None:
        if self.metrics is not None:
            self.metrics.reset()


__all__ = ["ARCHITECTURES", "Engine", "INTERPRETER", "RunConfig"]
