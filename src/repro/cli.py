"""Command-line toolchain: the Omniware developer tools as one binary.

Usage (also via ``python -m repro``):

.. code-block:: none

    omnicc compile  prog.c [-o prog.oof] [-O{0,1,2}] [--lisp]
    omnicc link     a.oof b.oof [-o prog.oom]
    omnicc run      prog.c|prog.oom [--arch mips|sparc|ppc|x86|omnivm]
                    [--link lib.c]... [--no-sfi] [--cycles] [--stats]
    omnicc stats    prog.c|prog.oom [--arch all|mips|...] [--json]
    omnicc disasm   prog.oom [--function main]
    omnicc asm      prog.s [-o prog.oof]
    omnicc bench    [--table 1|2|3|4|5|6] [--figure 1]
    omnicc difftest [--count N] [--seed S] [--targets mips,ppc]
                    [--json] [--no-minimize] [--stats]
                    [--sfi [--mutants N]]
    omnicc sfi-check [--arch mips,ppc] [--json]
    omnicc serve    --requests reqs.json [--workers N] [--processes N]
                    [--deadline SECONDS] [--json] [--stats]

``compile`` produces an Omniware object file; ``link`` produces a mobile
module; ``run`` executes on the reference VM or a translated target
(with SFI by default, exactly as a host would); ``bench`` prints a
reproduced table from the paper; ``difftest`` cross-executes seeded
random programs on the interpreter and every target simulator and
reports any semantic divergence (exit status 1 if one is found) — with
``--sfi`` it instead fuzzes the SFI verifier by mutating verified
translations with sandbox-escape mutations, reporting the kill-rate
(exit status 1 on any surviving unsafe mutant or overtight rejection);
``serve`` drives a batch of requests through the concurrent
:class:`~repro.service.ModuleHost` (worker pool, deadlines, quotas,
interpreter fallback) — the service layer's benchmarking entry point.

``run --link lib.c`` dynamically links the main module against each
``--link`` library (per-module SFI policies, cross-module calls through
checked trampolines); ``serve`` request specs can likewise
``{"register": name, ...}`` / ``{"revoke": name}`` modules and run
``{"modules": [roots]}`` requests against the host's registry.  Dynamic
link failures exit with distinct statuses: unresolved import 4, import
cycle 5, revoked module 6, cross-module violation 7, duplicate export 8.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro import metrics
from repro.compiler import CompileOptions, compile_to_object
from repro.errors import (
    CrossModuleViolation,
    DuplicateExportError,
    ModuleCycleError,
    ModuleRevokedError,
    ReproError,
    UnresolvedImportError,
)
from repro.lang2.compiler import compile_minilisp
from repro.omnivm.asmparser import assemble
from repro.omnivm.disasm import disassemble_program
from repro.omnivm.linker import LinkedProgram, link
from repro.omnivm.objfile import ObjectModule
from repro.runtime.loader import run_module
from repro.runtime.native_loader import run_on_target
from repro.translators import ARCHITECTURES, TranslationOptions


def _load_objects(paths: list[str]) -> list[ObjectModule]:
    return [ObjectModule.from_bytes(Path(p).read_bytes()) for p in paths]


def _object_from_path(path: str, opt_level: int) -> ObjectModule:
    """One translation unit (NOT linked): a .c/.lisp/.s source or a
    .oof/.oom object file, for dynamic-link registration."""
    data = Path(path).read_bytes()
    if path.endswith((".oof", ".oom")):
        return ObjectModule.from_bytes(data)
    text = data.decode("utf-8")
    if path.endswith((".lisp", ".ml2")):
        return compile_minilisp(text, module_name=Path(path).stem)
    if path.endswith(".s"):
        return assemble(text, Path(path).stem)
    return compile_to_object(text, CompileOptions(
        opt_level=opt_level, module_name=Path(path).stem))


def _program_from_path(path: str, opt_level: int) -> LinkedProgram:
    """Accept a .c/.lisp/.s source, a .oof object, or a .oom module."""
    data = Path(path).read_bytes()
    if path.endswith(".oom"):
        # A linked module is shipped as its object serialization here.
        return link([ObjectModule.from_bytes(data)], name=path)
    if path.endswith(".oof"):
        return link([ObjectModule.from_bytes(data)], name=path)
    text = data.decode("utf-8")
    if path.endswith((".lisp", ".ml2")):
        return link([compile_minilisp(text, module_name=Path(path).stem)])
    if path.endswith(".s"):
        return link([assemble(text, Path(path).stem)])
    obj = compile_to_object(text, CompileOptions(
        opt_level=opt_level, module_name=Path(path).stem))
    return link([obj], name=path)


def cmd_compile(args: argparse.Namespace) -> int:
    text = Path(args.source).read_text()
    if args.lisp or args.source.endswith((".lisp", ".ml2")):
        obj = compile_minilisp(text, module_name=Path(args.source).stem)
    else:
        obj = compile_to_object(text, CompileOptions(
            opt_level=args.opt, module_name=Path(args.source).stem))
    out = args.output or (Path(args.source).stem + ".oof")
    Path(out).write_bytes(obj.to_bytes())
    print(f"{out}: {len(obj.text)} OmniVM instructions, "
          f"{len(obj.data)} data bytes, {len(obj.symbols)} symbols")
    return 0


def cmd_asm(args: argparse.Namespace) -> int:
    obj = assemble(Path(args.source).read_text(), Path(args.source).stem)
    out = args.output or (Path(args.source).stem + ".oof")
    Path(out).write_bytes(obj.to_bytes())
    print(f"{out}: {len(obj.text)} instructions")
    return 0


def cmd_link(args: argparse.Namespace) -> int:
    objects = _load_objects(args.objects)
    program = link(objects, name=args.output or "a.oom",
                   entry_symbol=args.entry)
    # A linked module round-trips through one merged object.
    merged = ObjectModule(program.name)
    merged.text = program.instrs
    merged.data = bytes(program.data_image)
    for name, address in program.symbols.items():
        from repro.omnivm.memory import CODE_BASE, DATA_BASE

        if address >= DATA_BASE:
            merged.define(name, "data", address - DATA_BASE)
        else:
            merged.define(name, "text", address - CODE_BASE)
    out = args.output or "a.oom"
    Path(out).write_bytes(merged.to_bytes())
    print(f"{out}: {len(program.instrs)} instructions, "
          f"entry {program.entry_symbol!r}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    collector = metrics.MetricsCollector()
    with metrics.collect(collector):
        if args.link:
            code, module = _run_linked(args)
            sys.stdout.write(module.host.output_text())
            if args.cycles:
                machine = getattr(module, "machine", None)
                detail = (f" instructions={machine.instret} "
                          f"cycles={machine.cycles}" if machine else "")
                print(f"\n[{args.arch}] exit={code}{detail} "
                      f"modules={len(module.program.modules)}",
                      file=sys.stderr)
            if args.stats:
                print(f"\n[{args.arch}] pipeline stats\n"
                      f"{collector.render()}", file=sys.stderr)
            return code & 0xFF
        program = _program_from_path(args.module, args.opt)
        if args.arch == "omnivm":
            code, host = run_module(program, engine=args.engine)
            sys.stdout.write(host.output_text())
            if args.cycles:
                print(f"\n[omnivm] exit={code}", file=sys.stderr)
        else:
            options = TranslationOptions(sfi=not args.no_sfi)
            code, module = run_on_target(program, args.arch, options,
                                         engine=args.engine)
            sys.stdout.write(module.host.output_text())
            if args.cycles:
                machine = module.machine
                print(
                    f"\n[{args.arch}] exit={code} "
                    f"instructions={machine.instret} "
                    f"cycles={machine.cycles} "
                    f"sfi={'on' if options.sfi else 'off'}",
                    file=sys.stderr)
    if args.stats:
        print(f"\n[{args.arch}] pipeline stats\n{collector.render()}",
              file=sys.stderr)
    return code & 0xFF


def _run_linked(args: argparse.Namespace):
    """``run --link``: dynamically link the main module against the
    ``--link`` libraries (per-module SFI + trampolines) and execute."""
    from repro.engine import Engine, RunConfig

    engine = Engine(
        target=None if args.arch == "omnivm" else args.arch,
        profile=TranslationOptions(sfi=not args.no_sfi),
    )
    for path in args.link:
        obj = _object_from_path(path, args.opt)
        engine.register_module(obj.name, obj)
    main_obj = _object_from_path(args.module, args.opt)
    engine.register_module(main_obj.name, main_obj)
    module = engine.load_program(
        [main_obj.name], config=RunConfig(engine=args.engine))
    return module.run(), module


def cmd_stats(args: argparse.Namespace) -> int:
    """Pipeline telemetry for one module: per-stage wall times, SFI
    check counts, and static/dynamic code expansion, per target."""
    compile_collector = metrics.MetricsCollector()
    with metrics.collect(compile_collector):
        program = _program_from_path(args.module, args.opt)
    options = TranslationOptions(sfi=not args.no_sfi)
    archs = ARCHITECTURES if args.arch == "all" else (args.arch,)

    # Reference run: the dynamic-expansion denominator (Figure 1).
    omni_collector = metrics.MetricsCollector()
    with metrics.collect(omni_collector):
        run_module(program)
    omni_instret = omni_collector.counters.get("execute.omni.instret", 0)

    per_arch: dict[str, metrics.MetricsCollector] = {}
    report: dict = {
        "module": args.module,
        "omni_instrs": len(program.instrs),
        "omni_instret": omni_instret,
        "sfi": options.sfi,
        "compile": compile_collector.to_dict(),
        "targets": {},
    }
    for arch in archs:
        collector = metrics.MetricsCollector()
        with metrics.collect(collector):
            run_on_target(program, arch, options)
        per_arch[arch] = collector
        payload = collector.to_dict()
        counters = collector.counters
        native_instret = counters.get("execute.native.instret", 0)
        payload["dynamic_expansion_ratio"] = (
            native_instret / omni_instret if omni_instret else None
        )
        report["targets"][arch] = payload

    if args.json:
        print(json.dumps(report, indent=2))
        return 0

    print(f"module: {args.module}  ({len(program.instrs)} OmniVM "
          f"instructions, {omni_instret} interpreted, "
          f"sfi={'on' if options.sfi else 'off'})")
    print("\ncompile stages:")
    for name in sorted(compile_collector.stage_seconds):
        print(f"  {name:<16} {compile_collector.stage_seconds[name] * 1e3:9.3f} ms")
    header = (f"{'arch':<6} {'verify(ms)':>10} {'transl(ms)':>11} "
              f"{'sfiver(ms)':>11} {'exec(ms)':>9} {'expand':>7} "
              f"{'dyn-exp':>8} {'sfi-inl':>8} {'sfi-chk':>8} {'sfi-exec':>9}")
    print(f"\n{header}")
    for arch in archs:
        collector = per_arch[arch]
        seconds = collector.stage_seconds
        counters = collector.counters
        native_instret = counters.get("execute.native.instret", 0)
        dyn = native_instret / omni_instret if omni_instret else 0.0
        checks = (counters.get("verify.sfi.stores_checked", 0)
                  + counters.get("verify.sfi.ijumps_checked", 0))
        print(f"{arch:<6} "
              f"{seconds.get('verify.module', 0.0) * 1e3:10.3f} "
              f"{seconds.get('translate', 0.0) * 1e3:11.3f} "
              f"{seconds.get('verify.sfi', 0.0) * 1e3:11.3f} "
              f"{seconds.get('execute', 0.0) * 1e3:9.3f} "
              f"{collector.expansion_ratio() or 0.0:7.2f} "
              f"{dyn:8.2f} "
              f"{counters.get('translate.static.sfi', 0):8d} "
              f"{checks:8d} "
              f"{counters.get('execute.sfi.dynamic', 0):9d}")
    print("\n(expand = static native/OmniVM instruction ratio; dyn-exp = "
          "dynamic; sfi-inl = SFI instructions inlined;\n sfi-chk = "
          "stores+indirect jumps the SFI verifier checked; sfi-exec = "
          "SFI instructions retired)")
    return 0


def cmd_difftest(args: argparse.Namespace) -> int:
    from repro.difftest import run_difftest
    from repro.engine import Engine

    targets = tuple(args.targets.split(",")) if args.targets else None
    if targets:
        for target in targets:
            if target not in ARCHITECTURES:
                print(f"omnicc: unknown target {target!r}", file=sys.stderr)
                return 2
    if args.sfi:
        from repro.difftest.sfi_mutator import run_sfi_mutation_fuzz

        collector = metrics.MetricsCollector()
        with metrics.collect(collector):
            summary = run_sfi_mutation_fuzz(
                count=args.count,
                seed=args.seed,
                targets=targets,
                mutants_per_module=args.mutants,
                minimize=not args.no_minimize,
            )
        if args.json:
            print(json.dumps(summary.to_dict(), indent=2))
        else:
            print(summary.render())
        if args.stats:
            print(f"\n{collector.render()}", file=sys.stderr)
        return 0 if summary.clean else 1
    engine = Engine(cache=False)
    summary = run_difftest(
        count=args.count,
        seed=args.seed,
        targets=targets,
        engine=engine,
        minimize=not args.no_minimize,
    )
    if args.json:
        print(json.dumps(summary.to_dict(), indent=2))
    else:
        print(summary.render())
        for divergence in summary.divergences:
            print()
            print(divergence.report())
    if args.stats:
        print(f"\n{engine.stats_text()}", file=sys.stderr)
    return 0 if summary.clean else 1


def cmd_sfi_check(args: argparse.Namespace) -> int:
    """Model-check the SFI guard templates; exit 1 on a counterexample."""
    from repro.sfi.modelcheck import check_templates

    archs = tuple(args.arch.split(",")) if args.arch else None
    if archs:
        for arch in archs:
            if arch not in ARCHITECTURES:
                print(f"omnicc: unknown target {arch!r}", file=sys.stderr)
                return 2
    report = check_templates(archs)
    if args.json:
        payload = {
            "ok": report.ok,
            "states_checked": report.states_checked,
            "templates": [
                {
                    "arch": r.arch,
                    "template": r.template,
                    "states": r.states,
                    "counterexample": (str(r.counterexample)
                                       if r.counterexample else None),
                }
                for r in report.results
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        per_arch: dict[str, int] = {}
        for r in report.results:
            per_arch[r.arch] = per_arch.get(r.arch, 0) + r.states
        for arch, states in sorted(per_arch.items()):
            print(f"{arch:6s} {states:8d} states")
        if report.ok:
            print(f"all guard templates safe "
                  f"({report.states_checked} states checked)")
        else:
            for cx in report.counterexamples:
                print()
                print(cx)
    return 0 if report.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Batch mode for the module-hosting service: read a JSON request
    file, run everything through one :class:`ModuleHost`, and report
    per-request outcomes plus service statistics.

    The request file is a JSON array; each element names a module
    (``"path"`` — any format ``run`` accepts — inline ``"source"``, or
    ``"modules"`` — root names to dynamically link out of the host's
    registry) plus optional ``"arch"``, ``"entry"``,
    ``"deadline_seconds"``, ``"fuel"``, ``"max_output_bytes"``, and
    ``"repeat"`` (clone the request N times, for load generation).

    Two action elements manage the registry in file order:
    ``{"register": NAME, "path"|"source": ...}`` and
    ``{"revoke": NAME}``.  Requests preceding an action complete before
    it applies (the pending batch is flushed), so a spec can exercise
    register -> run -> revoke -> run deterministically.
    """
    from repro.engine import Engine
    from repro.service import ModuleRequest, RequestQuota

    spec_list = json.loads(Path(args.requests).read_text())
    if not isinstance(spec_list, list):
        print("omnicc: serve: request file must be a JSON array",
              file=sys.stderr)
        return 2
    programs: dict[str, LinkedProgram] = {}
    responses = []
    engine = Engine(target=args.arch)
    start = time.perf_counter()
    with engine.serve(processes=args.processes, workers=args.workers,
                      queue_depth=args.queue_depth,
                      default_deadline=args.deadline) as host:
        pending: list[ModuleRequest] = []

        def flush() -> None:
            if pending:
                responses.extend(host.run_batch(pending))
                pending.clear()

        for index, spec in enumerate(spec_list):
            if "register" in spec:
                flush()
                if "path" in spec:
                    host.register_module(
                        spec["register"],
                        _object_from_path(spec["path"], args.opt))
                elif "source" in spec:
                    host.register_module(spec["register"], spec["source"])
                else:
                    print(f"omnicc: serve: register action {index} "
                          f"needs 'path' or 'source'", file=sys.stderr)
                    return 2
                continue
            if "revoke" in spec:
                flush()
                host.revoke_module(spec["revoke"])
                continue
            program: LinkedProgram | str | None = None
            modules = None
            if "modules" in spec:
                modules = list(spec["modules"])
            elif "path" in spec:
                if spec["path"] not in programs:
                    programs[spec["path"]] = _program_from_path(
                        spec["path"], args.opt)
                program = programs[spec["path"]]
            elif "source" in spec:
                program = spec["source"]
            else:
                print(f"omnicc: serve: request {index} has neither "
                      f"'path', 'source', nor 'modules'", file=sys.stderr)
                return 2
            quota = RequestQuota(
                fuel=spec.get("fuel", RequestQuota.fuel),
                segment_size=spec.get("segment_size"),
                max_output_bytes=spec.get(
                    "max_output_bytes", RequestQuota.max_output_bytes),
            )
            base_id = spec.get("id", f"{index}")
            repeat = int(spec.get("repeat", 1))
            for clone in range(repeat):
                pending.append(ModuleRequest(
                    program=program,
                    modules=modules,
                    target=spec.get("arch"),
                    entry=spec.get("entry"),
                    deadline_seconds=spec.get("deadline_seconds"),
                    quota=quota,
                    request_id=(base_id if repeat == 1
                                else f"{base_id}#{clone}"),
                ))
        flush()
    elapsed = time.perf_counter() - start

    summary = {
        "requests": len(responses),
        "ok": sum(r.ok for r in responses),
        "fallbacks": sum(r.fallback for r in responses),
        "errors": sum(not r.ok for r in responses),
        "elapsed_seconds": elapsed,
        "throughput_rps": len(responses) / elapsed if elapsed else None,
        "workers": args.workers,
        "processes": args.processes,
        "service": host.stats.to_dict(),
    }
    if args.json:
        summary["responses"] = [r.to_dict() for r in responses]
        print(json.dumps(summary, indent=2))
    else:
        for r in responses:
            status = "ok" if r.ok else f"ERROR {r.error}"
            extras = []
            if r.fallback:
                extras.append("fallback->omnivm")
            if r.retries:
                extras.append(f"retries={r.retries}")
            extra = f"  [{', '.join(extras)}]" if extras else ""
            print(f"{r.request_id:<12} {status:<24} arch={r.arch:<7}"
                  f"exit={r.exit_code!s:<5} "
                  f"{r.latency_seconds * 1e3:8.2f} ms{extra}")
        pct = host.stats.latency_percentiles()
        pool = (f"{args.processes} processes x {args.workers} threads"
                if args.processes else f"{args.workers} workers")
        print(f"\n{summary['requests']} requests in {elapsed:.3f}s "
              f"({summary['throughput_rps']:.1f} req/s, "
              f"{pool}): {summary['ok']} ok, "
              f"{summary['fallbacks']} fallbacks, "
              f"{summary['errors']} errors; "
              f"latency p50 {pct['p50'] * 1e3:.2f} ms / "
              f"p90 {pct['p90'] * 1e3:.2f} ms / "
              f"p99 {pct['p99'] * 1e3:.2f} ms")
    if args.stats:
        if args.processes:
            # The router's engine never translates; the workers'
            # caches (merged into the service stats) are the truth.
            cache = summary["service"].get("cache", {})
            print(
                f"\ntranslation cache (all shards): "
                f"{cache.get('hits', 0)} hits "
                f"({cache.get('disk_hits', 0)} from disk), "
                f"{cache.get('misses', 0)} misses, "
                f"{cache.get('evictions', 0)} evictions",
                file=sys.stderr,
            )
        else:
            print(f"\n{engine.stats_text()}", file=sys.stderr)
    return 0 if summary["errors"] == 0 else 1


def cmd_disasm(args: argparse.Namespace) -> int:
    program = _program_from_path(args.module, 2)
    print(disassemble_program(program, args.function))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.evalharness import tables
    from repro.evalharness.figures import figure1

    if args.figure == 1:
        print(figure1().render())
        return 0
    table_fn = tables.ALL_TABLES[f"table{args.table}"]
    result = table_fn()
    if isinstance(result, tuple):
        for part in result:
            print(part.render())
            print()
    else:
        print(result.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="omnicc", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile MiniC/MiniLisp to an object")
    p.add_argument("source")
    p.add_argument("-o", "--output")
    p.add_argument("-O", "--opt", type=int, default=2, choices=(0, 1, 2))
    p.add_argument("--lisp", action="store_true",
                   help="treat the source as MiniLisp")
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("asm", help="assemble OmniVM assembly to an object")
    p.add_argument("source")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=cmd_asm)

    p = sub.add_parser("link", help="link objects into a mobile module")
    p.add_argument("objects", nargs="+")
    p.add_argument("-o", "--output")
    p.add_argument("--entry", default="main")
    p.set_defaults(fn=cmd_link)

    p = sub.add_parser("run", help="run a module (interpreted or translated)")
    p.add_argument("module", help="source file, .oof object, or .oom module")
    p.add_argument("--arch", default="omnivm",
                   choices=("omnivm",) + tuple(ARCHITECTURES))
    p.add_argument("--link", action="append", default=[],
                   metavar="PATH",
                   help="dynamically link against this library module "
                        "(repeatable); each module keeps its own SFI "
                        "policy and cross-module calls go through "
                        "checked trampolines")
    p.add_argument("--no-sfi", action="store_true")
    p.add_argument("--engine", default="auto",
                   choices=("auto", "jit", "threaded", "legacy"),
                   help="execution loop: auto-tiering (default; superblock "
                        "JIT on the interpreter and all four targets), jit, "
                        "the threaded-code engine, or the legacy "
                        "per-instruction loop")
    p.add_argument("--cycles", action="store_true",
                   help="print execution statistics to stderr")
    p.add_argument("--stats", action="store_true",
                   help="print pipeline metrics (per-stage timings, "
                        "counters) to stderr")
    p.add_argument("-O", "--opt", type=int, default=2, choices=(0, 1, 2))
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "stats",
        help="per-stage pipeline telemetry for a module across targets")
    p.add_argument("module", help="source file, .oof object, or .oom module")
    p.add_argument("--arch", default="all",
                   choices=("all",) + tuple(ARCHITECTURES))
    p.add_argument("--no-sfi", action="store_true")
    p.add_argument("--json", action="store_true",
                   help="emit the full report as JSON")
    p.add_argument("-O", "--opt", type=int, default=2, choices=(0, 1, 2))
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("disasm", help="disassemble a module")
    p.add_argument("module")
    p.add_argument("--function")
    p.set_defaults(fn=cmd_disasm)

    p = sub.add_parser("bench", help="reproduce a table/figure from the paper")
    p.add_argument("--table", type=int, choices=(1, 2, 3, 4, 5, 6))
    p.add_argument("--figure", type=int, choices=(1,))
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "difftest",
        help="cross-execute random programs on the interpreter and the "
             "target simulators, reporting semantic divergences")
    p.add_argument("--count", type=int, default=500,
                   help="number of generated programs (default 500)")
    p.add_argument("--seed", default="difftest",
                   help="corpus seed; same seed -> same programs")
    p.add_argument("--targets",
                   help="comma-separated subset of targets "
                        "(default: all four)")
    p.add_argument("--json", action="store_true",
                   help="emit the summary and divergences as JSON")
    p.add_argument("--no-minimize", action="store_true",
                   help="skip shrinking divergent programs")
    p.add_argument("--stats", action="store_true",
                   help="print engine pipeline metrics to stderr")
    p.add_argument("--sfi", action="store_true",
                   help="fuzz the SFI verifier instead: mutate verified "
                        "translations with sandbox-escape mutations and "
                        "report the kill-rate (exit 1 on any surviving "
                        "unsafe mutant or overtight rejection)")
    p.add_argument("--mutants", type=int, default=6,
                   help="with --sfi: mutants derived per translated "
                        "module (default 6)")
    p.set_defaults(fn=cmd_difftest)

    p = sub.add_parser(
        "sfi-check",
        help="exhaustively model-check the SFI guard templates "
             "(store/jump, every target), exit 1 with a concrete "
             "counterexample if any is unsafe")
    p.add_argument("--arch",
                   help="comma-separated subset of targets "
                        "(default: all four)")
    p.add_argument("--json", action="store_true",
                   help="emit the per-template report as JSON")
    p.set_defaults(fn=cmd_sfi_check)

    p = sub.add_parser(
        "serve",
        help="run a batch of requests through the concurrent "
             "module-hosting service (worker pool, deadlines, quotas, "
             "interpreter fallback)")
    p.add_argument("--requests", required=True,
                   help="JSON array of request specs "
                        "({'path'|'source', 'arch', 'deadline_seconds', "
                        "'fuel', 'max_output_bytes', 'repeat', ...})")
    p.add_argument("--workers", type=int, default=4,
                   help="worker threads (per process when --processes "
                        "is set)")
    p.add_argument("--processes", type=int, default=None,
                   help="shard the service over N worker processes "
                        "(consistent-hash routing by module digest; "
                        "default: one process, threads only)")
    p.add_argument("--queue-depth", type=int, default=64)
    p.add_argument("--arch", default=None,
                   choices=("omnivm",) + tuple(ARCHITECTURES),
                   help="default target for requests that set no 'arch' "
                        "(default: the reference interpreter)")
    p.add_argument("--deadline", type=float, default=None,
                   help="default per-request deadline in seconds")
    p.add_argument("--json", action="store_true",
                   help="emit the summary and every response as JSON")
    p.add_argument("--stats", action="store_true",
                   help="print engine pipeline metrics to stderr")
    p.add_argument("-O", "--opt", type=int, default=2, choices=(0, 1, 2))
    p.set_defaults(fn=cmd_serve)

    return parser


#: Distinct exit statuses for the dynamic-link error family, so scripts
#: driving the CLI can react to (say) a revoked dependency without
#: parsing stderr.  Any other pipeline error still exits 1.
LINK_EXIT_CODES = {
    UnresolvedImportError: 4,
    ModuleCycleError: 5,
    ModuleRevokedError: 6,
    CrossModuleViolation: 7,
    DuplicateExportError: 8,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as err:
        print(f"omnicc: error: {err}", file=sys.stderr)
        return LINK_EXIT_CODES.get(type(err), 1)
    except FileNotFoundError as err:
        print(f"omnicc: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
