"""Exception hierarchy for the repro package.

Every error raised by the compiler, assembler, linker, translators, runtime,
and simulators derives from :class:`ReproError`, so host applications can
catch one type at the embedding boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SourceLocation:
    """A position in a source file (1-based line and column)."""

    __slots__ = ("filename", "line", "col")

    def __init__(self, filename: str = "<input>", line: int = 0, col: int = 0):
        self.filename = filename
        self.line = line
        self.col = col

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.col}"

    def __repr__(self) -> str:
        return f"SourceLocation({self.filename!r}, {self.line}, {self.col})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SourceLocation):
            return NotImplemented
        return (self.filename, self.line, self.col) == (
            other.filename,
            other.line,
            other.col,
        )


class CompileError(ReproError):
    """An error detected while compiling source code.

    Carries an optional :class:`SourceLocation` so front ends can report
    precise positions.
    """

    def __init__(self, message: str, loc: SourceLocation | None = None):
        self.loc = loc
        if loc is not None:
            message = f"{loc}: {message}"
        super().__init__(message)


class LexError(CompileError):
    """Invalid token in source text."""


class ParseError(CompileError):
    """Syntactically invalid source text."""


class TypeError_(CompileError):
    """Semantic (type) error.  Named with a trailing underscore to avoid
    shadowing the builtin."""


class IRError(ReproError):
    """Malformed IR detected by the verifier or a pass."""


class AsmError(ReproError):
    """Error while assembling OmniVM assembly text."""


class EncodingError(ReproError):
    """Error while encoding or decoding OmniVM binary instructions."""


class ObjectFormatError(ReproError):
    """Malformed Omniware object file."""


class LinkError(ReproError):
    """Unresolved or duplicate symbols, section overflow, etc."""


class DynamicLinkError(LinkError):
    """Base class for errors resolving imports/exports across separately
    translated modules at load time (:mod:`repro.runtime.linker`).

    Subclasses :class:`LinkError` so callers that already handle static
    link failures keep working, while the service and CLI can map the
    dynamic-link cases to distinct counters and exit codes.
    """


class UnresolvedImportError(DynamicLinkError):
    """A module imports a symbol that no registered module exports."""

    def __init__(self, symbol: str, importer: str = ""):
        self.symbol = symbol
        self.importer = importer
        message = f"unresolved import {symbol!r}"
        if importer:
            message += f" (required by module {importer!r})"
        super().__init__(message)


class DuplicateExportError(DynamicLinkError):
    """Two modules in the same link closure export the same symbol."""

    def __init__(self, symbol: str, modules: tuple[str, ...] = ()):
        self.symbol = symbol
        self.modules = tuple(modules)
        message = f"duplicate export {symbol!r}"
        if self.modules:
            message += f" (exported by modules {', '.join(self.modules)})"
        super().__init__(message)


class ModuleCycleError(DynamicLinkError):
    """The import graph of a link closure contains a cycle, so no
    canonical dependencies-first layout exists."""

    def __init__(self, cycle: tuple[str, ...] = ()):
        self.cycle = tuple(cycle)
        message = "import cycle between modules"
        if self.cycle:
            message += ": " + " -> ".join(self.cycle + (self.cycle[0],))
        super().__init__(message)


class ModuleRevokedError(DynamicLinkError):
    """A link closure references a module that has been revoked from the
    registry (or an image built against a now-revoked module epoch)."""

    def __init__(self, name: str, epoch: int | None = None):
        self.name = name
        self.epoch = epoch
        message = f"module {name!r} has been revoked"
        if epoch is not None:
            message += f" (epoch {epoch})"
        super().__init__(message)


class VerifyError(ReproError):
    """A module failed load-time verification."""


class CrossModuleViolation(VerifyError):
    """A module references another module's code other than through an
    exported symbol (direct jump/call into a non-exported address, or a
    materialized code pointer crossing the module boundary)."""

    def __init__(self, message: str, module: str = "", target: int = 0):
        super().__init__(message)
        self.module = module
        self.target = target


class TranslationError(ReproError):
    """The load-time translator could not translate a module."""


class UnknownArchitectureError(ReproError, KeyError):
    """A caller named a target architecture no translator is registered
    for.

    Raised from one place — the translator registry — so the compiler
    driver, both loaders, the Engine facade, and the CLI all report the
    same error with the list of supported architectures.  Subclasses
    :class:`KeyError` for compatibility with callers that treated the
    registry as a plain dict.
    """

    def __init__(self, arch: object, known: tuple[str, ...] = ()):
        self.arch = arch
        self.known = tuple(known)
        message = f"unknown target architecture {arch!r}"
        if self.known:
            message += f"; supported: {', '.join(self.known)}"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]


class RegAllocError(ReproError):
    """Register allocation failed (e.g. too few registers for the ABI)."""


class VMError(ReproError):
    """Base class for errors during OmniVM or target simulation."""


class AccessViolation(VMError):
    """An unauthorized memory access.

    Under the OmniVM exception model this is delivered to the module's
    registered handler if there is one; it only escapes as a Python
    exception when the module has no handler installed.
    """

    def __init__(self, message: str, address: int = 0, kind: str = "store"):
        super().__init__(message)
        self.address = address
        self.kind = kind


class SandboxViolation(VMError):
    """Translated native code attempted to escape its SFI sandbox.

    This indicates a translator bug: correctly sandboxed code can never
    raise it, which is what the SFI verifier and tests assert.
    """


class HostCallError(VMError):
    """A module invoked an unknown or unauthorized host API entry."""


class VMTrap(VMError):
    """Module executed an explicit trap/abort instruction."""

    def __init__(self, message: str = "trap", code: int = 0):
        super().__init__(message)
        self.code = code


class VMRuntimeError(VMError):
    """Dynamic error during simulation (division by zero, bad opcode...)."""


class FuelExhausted(VMError):
    """The simulation exceeded its instruction budget (guards against
    non-terminating modules in tests)."""


class ServiceError(ReproError):
    """Base class for errors raised by the module-hosting service
    (:mod:`repro.service`)."""


class DeadlineExceeded(ServiceError):
    """A hosted request's wall-clock deadline expired before the module
    finished.

    The service watchdog enforces deadlines by cutting the running
    machine's fuel, so the module stops at its next instruction
    boundary; the resulting :class:`FuelExhausted` is converted into
    this type when the deadline — not the fuel quota — was the cause.
    """

    def __init__(self, message: str = "deadline exceeded",
                 deadline_seconds: float | None = None):
        super().__init__(message)
        self.deadline_seconds = deadline_seconds


class QuotaExceeded(ServiceError):
    """A hosted request exceeded a per-request resource quota (e.g. the
    output-byte cap)."""

    def __init__(self, message: str, quota: str = "",
                 limit: int | None = None):
        super().__init__(message)
        self.quota = quota
        self.limit = limit


class ServiceOverloaded(ServiceError):
    """The service's bounded request queue is full; the request was
    rejected rather than queued (graceful degradation under load)."""


class TransientFault(ServiceError):
    """An injected or environmental failure the service treats as
    retryable (fault-injection hooks raise this to exercise the
    retry-with-backoff path).  The sharded service also fails requests
    that were in flight on a crashed worker process with this type, so
    clients know a plain retry is safe."""


# -- cross-process serialization ----------------------------------------------
#
# The sharded service (:mod:`repro.service_router`) runs requests in
# worker processes; typed errors raised there (register/revoke failures,
# the dynamic-link family, quota violations, ...) must cross the process
# boundary and re-raise in the router as the *same* classes, or callers
# lose the typed contract the threaded :class:`repro.service.ModuleHost`
# provides.  ``serialize_error`` / ``deserialize_error`` are that wire
# format: a plain JSON-able dict carrying the class name, the message,
# and the class-specific attributes needed to reconstruct the exception.

#: Attributes (beyond the message) each error class round-trips, in the
#: positional order its constructor takes them.  Classes not listed
#: reconstruct from the message alone.
_ERROR_SIGNATURES: dict[str, tuple[str, ...]] = {
    "UnresolvedImportError": ("symbol", "importer"),
    "DuplicateExportError": ("symbol", "modules"),
    "ModuleCycleError": ("cycle",),
    "ModuleRevokedError": ("name", "epoch"),
    "UnknownArchitectureError": ("arch", "known"),
}

#: Classes whose constructor takes (message, *attrs) keyword attributes.
_MESSAGE_PLUS_ATTRS: dict[str, tuple[str, ...]] = {
    "DeadlineExceeded": ("deadline_seconds",),
    "QuotaExceeded": ("quota", "limit"),
    "AccessViolation": ("address", "kind"),
    "VMTrap": ("code",),
    "CrossModuleViolation": ("module", "target"),
}


def _error_classes() -> dict[str, type]:
    """Every concrete ``ReproError`` subclass in this module, by name."""
    classes: dict[str, type] = {"ReproError": ReproError}
    pending = [ReproError]
    while pending:
        for sub in pending.pop().__subclasses__():
            if sub.__name__ not in classes:
                classes[sub.__name__] = sub
                pending.append(sub)
    return classes


def serialize_error(err: BaseException) -> dict:
    """A picklable/JSON-able description of *err* for the cross-process
    service protocol.  Round-trips every class in this module through
    :func:`deserialize_error`; foreign exception types degrade to their
    class name plus message (deserialized as :class:`ReproError`)."""
    name = type(err).__name__
    payload: dict = {"type": name, "message": str(err)}
    attrs: dict = {}
    for attr in _ERROR_SIGNATURES.get(name, ()) \
            + _MESSAGE_PLUS_ATTRS.get(name, ()):
        value = getattr(err, attr, None)
        if isinstance(value, (tuple, frozenset)):
            value = list(value)
        attrs[attr] = value
    if attrs:
        payload["attrs"] = attrs
    return payload


def deserialize_error(payload: dict) -> ReproError:
    """Reconstruct the typed exception :func:`serialize_error` described.

    Unknown class names (a newer worker talking to an older router, or a
    non-Repro exception) come back as a plain :class:`ReproError`
    carrying the original class name in the message — never an
    unhandled KeyError, so a malformed payload cannot take the router
    down."""
    name = payload.get("type", "ReproError")
    message = payload.get("message", "")
    attrs = payload.get("attrs", {}) or {}
    cls = _error_classes().get(name)
    if cls is None:
        return ReproError(f"{name}: {message}")
    try:
        if name in _ERROR_SIGNATURES:
            args = []
            for attr in _ERROR_SIGNATURES[name]:
                value = attrs.get(attr)
                args.append(tuple(value) if isinstance(value, list)
                            else value)
            return cls(*args)
        if name in _MESSAGE_PLUS_ATTRS:
            kwargs = {attr: attrs.get(attr)
                      for attr in _MESSAGE_PLUS_ATTRS[name]
                      if attrs.get(attr) is not None}
            return cls(message, **kwargs)
        return cls(message)
    except Exception:
        return ReproError(f"{name}: {message}")
