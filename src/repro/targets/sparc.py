"""SPARC (SuperSPARC-class) target model.

Characteristics modeled:

* 32 integer registers, flat (register windows are *not* modeled — the
  translator uses a flat mapping exactly like the paper's, which had to
  preserve ABI compatibility anyway); OmniVM registers map to r8..r23
  (``%o``/``%l`` ranges), with ``%g`` registers reserved for the runtime;
* 13-bit immediates (``simm13``): constants beyond that need
  ``sethi``+``or`` (``ldi`` category) — notably *smaller* than MIPS/PPC
  immediates, which is why the **global pointer** optimization matters
  most here (the paper credits SPARC's competitiveness to it);
* condition codes: compare is ``subcc`` (``cmp`` category when OmniVM's
  compare-and-branch splits);
* **branch delay slots with annulment**: the translator uses annulled
  branches to fill slots aggressively;
* scalar timing with 1-cycle taken-branch penalty and 2-cycle loads.
"""

from __future__ import annotations

from repro.targets.base import TargetSpec, Timing

AT = 1           # %g1: translator scratch
SFI_MASK = 2     # %g2
SFI_BASE = 3     # %g3
SFI_CODE_BASE = 4  # %g4
GP = 5           # %g5: global data pointer
SFI_CODE_MASK = 6  # %g6
SP = 14          # %o6
RA = 15          # %o7

INT_MAP = {i: 8 + i for i in range(16)}
INT_MAP[15] = SP
INT_MAP[14] = RA
# r8..r23 collide with SP/RA positions 14/15: shift the middle range.
for omni, native in list(INT_MAP.items()):
    if omni not in (14, 15) and native in (SP, RA):
        INT_MAP[omni] = 24 + (native - 14)  # move to %l6/%l7 range

FP_MAP = {i: i for i in range(16)}

#: simm13 immediate range.
IMM_BITS = 13


def _timing() -> Timing:
    return Timing(
        name="sparc",
        load_latency=2,
        mul_latency=8,
        div_latency=30,
        fp_add_latency=3,
        fp_mul_latency=5,
        fp_div_latency=20,
        cmp_latency=1,
        taken_branch_penalty=1,
        has_delay_slot=True,
        dual_issue=None,
    )


#: Dominant dynamic (op, op) pairs in SPARC translations of the SPEC
#: workloads (compare-and-branch dominates on the cc machines).
FUSION_PAIRS = (
    ("mov", "addi"), ("cmp", "bcc"), ("slli", "mov"), ("addi", "mov"),
    ("cmpi", "bcc"), ("lw", "lw"), ("mov", "mov"), ("sw", "sw"),
    ("lui", "ori"), ("lw", "cmpi"), ("mov", "lw"), ("mov", "sw"),
    ("and", "mov"), ("sw", "mov"), ("or", "jr"), ("addi", "add"),
    ("addi", "or"), ("lw", "slli"), ("fcmp", "fbcc"), ("fcmps", "fbcc"),
)


def spec() -> TargetSpec:
    return TargetSpec(
        name="sparc",
        num_regs=32,
        num_fregs=32,
        int_map=dict(INT_MAP),
        fp_map=dict(FP_MAP),
        reserved={
            "at": AT,
            "sfi_mask": SFI_MASK,
            "sfi_base": SFI_BASE,
            "sfi_code_base": SFI_CODE_BASE,
            "sfi_code_mask": SFI_CODE_MASK,
            "gp": GP,
            "sp": SP,
            "ra": RA,
        },
        timing=_timing(),
        delay_slots=True,
        has_indexed_mem=True,  # SPARC has reg+reg addressing
        imm_bits=IMM_BITS,
        fusion_pairs=FUSION_PAIRS,
    )
