"""Threaded-code execution engine for the simulated targets.

The native counterpart of :mod:`repro.omnivm.threaded`: translated
modules are predecoded once — every :class:`~repro.targets.base.MInstr`
becomes a bound closure over resolved register indexes and normalized
immediates — and then executed as lazily-discovered basic blocks with
``instret``, the fuel check, and the Figure-1 category counters charged
once per block.

The cycle-accurate parts stay per-instruction: each closure still calls
:meth:`TargetMachine._charge` in original program order (the scoreboard,
dual-issue pairing, and memory-resident-register costs are stateful), so
``cycles`` is bit-identical to the legacy executor.  What the threaded
engine removes is the per-step dispatch chain, the per-step fuel and
category bookkeeping, and the dict-built condition-code predicate of
``_cc_predicate`` (predecoded to one closure per predicate).

Superinstruction fusion is **per-target**: ``TargetSpec.fusion_pairs``
lists the (op, op) pairs the target's translator actually emits hot
(cmp+bcc on the condition-code machines, slt+beq/bne on MIPS, lui+ori
constant synthesis, address+memory pairs).  Fused closures charge and
execute both halves in exact legacy order, so timing and faults are
unchanged.

Delay-slot semantics (MIPS/SPARC) are preserved exactly: the slot
instruction executes outside the violation try (slot faults propagate to
the host, as in the legacy loop), annulled untaken branches skip the
slot, and the taken-branch penalty lands after the slot.
"""

from __future__ import annotations

import time

from repro import metrics
from repro.errors import (
    AccessViolation,
    FuelExhausted,
    VMRuntimeError,
    VMTrap,
)
from repro.omnivm import semantics
from repro.targets.base import MInstr, TargetMachine, TargetSpec
from repro.utils.bits import round_f32, s32, u32

_M = 0xFFFFFFFF
_SIGN = 0x80000000
_WRAP = 0x100000000

#: Terminator classes for the block dispatcher.
_COND = 1   # conditional branch: returns target | -2 | None
_JUMP = 2   # unconditional: always returns a redirect
_HOST = 3   # hostcall: falls through
_TRAP = 4   # raises

_COND_OPS = frozenset("beq bne bltz blez bgtz bgez bcc fbcc".split())
_JUMP_OPS = frozenset("j jal jr jalr".split())

__all__ = ["ThreadedNativeProgram", "ThreadedTargetMachine",
           "predecode_native"]


#: Condition-code predicate closures (replaces the per-call dict of
#: ``TargetMachine._cc_predicate``).
_CC_TESTS = {
    "eq": lambda m: m.cc == 0,
    "ne": lambda m: m.cc != 0,
    "lt": lambda m: m.cc < 0,
    "le": lambda m: m.cc <= 0,
    "gt": lambda m: m.cc > 0,
    "ge": lambda m: m.cc >= 0,
    "ltu": lambda m: m.cc_unsigned < 0,
    "leu": lambda m: m.cc_unsigned <= 0,
    "gtu": lambda m: m.cc_unsigned > 0,
    "geu": lambda m: m.cc_unsigned >= 0,
}


# ---------------------------------------------------------------------------
# body closures: fn(m, regs, fregs, memory) -> None
# ---------------------------------------------------------------------------

_LOAD_SHAPES = {
    "lb": (1, True), "lbu": (1, False), "lh": (2, True), "lhu": (2, False),
    "lw": (4, False), "lbx": (1, True), "lbux": (1, False),
    "lhx": (2, True), "lhux": (2, False), "lwx": (4, False),
}
_STORE_SIZES = {"sb": 1, "sh": 2, "sw": 4, "sbx": 1, "shx": 2, "swx": 4}


def _sem_alu(mi):
    """Semantic action for specializable straight-line ops (no charge)."""
    op = mi.op
    rd, rs, rt = mi.rd, mi.rs, mi.rt
    immu = u32(mi.imm)
    imm = mi.imm
    if op == "add":
        def fn(m, regs, fregs, memory):
            regs[rd] = (regs[rs] + regs[rt]) & _M
    elif op == "addi":
        def fn(m, regs, fregs, memory):
            regs[rd] = (regs[rs] + immu) & _M
    elif op == "sub":
        def fn(m, regs, fregs, memory):
            regs[rd] = (regs[rs] - regs[rt]) & _M
    elif op == "mul":
        def fn(m, regs, fregs, memory):
            regs[rd] = (regs[rs] * regs[rt]) & _M
    elif op == "and":
        def fn(m, regs, fregs, memory):
            regs[rd] = regs[rs] & regs[rt]
    elif op == "andi":
        def fn(m, regs, fregs, memory):
            regs[rd] = regs[rs] & immu
    elif op == "or":
        def fn(m, regs, fregs, memory):
            regs[rd] = regs[rs] | regs[rt]
    elif op == "ori":
        def fn(m, regs, fregs, memory):
            regs[rd] = regs[rs] | immu
    elif op == "xor":
        def fn(m, regs, fregs, memory):
            regs[rd] = regs[rs] ^ regs[rt]
    elif op == "xori":
        def fn(m, regs, fregs, memory):
            regs[rd] = regs[rs] ^ immu
    elif op == "nor":
        def fn(m, regs, fregs, memory):
            regs[rd] = (~(regs[rs] | regs[rt])) & _M
    elif op == "sll":
        def fn(m, regs, fregs, memory):
            regs[rd] = (regs[rs] << (regs[rt] & 31)) & _M
    elif op == "slli":
        sh = imm & 31

        def fn(m, regs, fregs, memory):
            regs[rd] = (regs[rs] << sh) & _M
    elif op == "srl":
        def fn(m, regs, fregs, memory):
            regs[rd] = regs[rs] >> (regs[rt] & 31)
    elif op == "srli":
        sh = imm & 31

        def fn(m, regs, fregs, memory):
            regs[rd] = regs[rs] >> sh
    elif op == "sra":
        def fn(m, regs, fregs, memory):
            a = regs[rs]
            if a & _SIGN:
                a -= _WRAP
            regs[rd] = (a >> (regs[rt] & 31)) & _M
    elif op == "srai":
        sh = imm & 31

        def fn(m, regs, fregs, memory):
            a = regs[rs]
            if a & _SIGN:
                a -= _WRAP
            regs[rd] = (a >> sh) & _M
    elif op == "li":
        def fn(m, regs, fregs, memory):
            regs[rd] = immu
    elif op == "lui":
        # The legacy executor does not re-mask the shifted value; keep
        # the precomputed constant bit-identical to `u32(imm) << 16`.
        value = immu << 16

        def fn(m, regs, fregs, memory):
            regs[rd] = value
    elif op == "mov":
        def fn(m, regs, fregs, memory):
            regs[rd] = regs[rs]
    elif op == "slt":
        def fn(m, regs, fregs, memory):
            a = regs[rs]
            b = regs[rt]
            if a & _SIGN:
                a -= _WRAP
            if b & _SIGN:
                b -= _WRAP
            regs[rd] = 1 if a < b else 0
    elif op == "sltu":
        def fn(m, regs, fregs, memory):
            regs[rd] = 1 if regs[rs] < regs[rt] else 0
    elif op == "slti":
        b = immu - _WRAP if immu & _SIGN else immu

        def fn(m, regs, fregs, memory):
            a = regs[rs]
            if a & _SIGN:
                a -= _WRAP
            regs[rd] = 1 if a < b else 0
    elif op == "sltiu":
        def fn(m, regs, fregs, memory):
            regs[rd] = 1 if regs[rs] < immu else 0
    elif op in ("sext8", "sext16", "zext8", "zext16"):
        extend = semantics.extend

        def fn(m, regs, fregs, memory):
            regs[rd] = extend(op, regs[rs])
    elif op in ("cmp", "subcc"):
        def fn(m, regs, fregs, memory):
            a = regs[rs]
            b = regs[rt]
            m.cc_unsigned = (a > b) - (a < b)
            if a & _SIGN:
                a -= _WRAP
            if b & _SIGN:
                b -= _WRAP
            m.cc = (a > b) - (a < b)
    elif op == "cmpi":
        # Legacy: signed half compares s32(a) with s32(imm); unsigned
        # half compares raw a with u32(imm).
        bs = immu - _WRAP if immu & _SIGN else immu

        def fn(m, regs, fregs, memory):
            a = regs[rs]
            m.cc_unsigned = (a > immu) - (a < immu)
            if a & _SIGN:
                a -= _WRAP
            m.cc = (a > bs) - (a < bs)
    elif op == "setcc":
        test = _CC_TESTS[mi.pred]

        def fn(m, regs, fregs, memory):
            regs[rd] = 1 if test(m) else 0
    elif op in ("fcmp", "fcmps"):
        fs, ft = mi.fs, mi.ft

        def fn(m, regs, fregs, memory):
            a = fregs[fs]
            b = fregs[ft]
            m.cc = (a > b) - (a < b)
            m.cc_unsigned = m.cc
    elif op == "sethnd":
        def fn(m, regs, fregs, memory):
            m.handler_omni = regs[rs]
    elif op == "nop":
        def fn(m, regs, fregs, memory):
            pass
    else:
        return None
    return fn


def _sem_mem(mi, idx):
    """Memory ops with fault annotation (no charge)."""
    op = mi.op
    rd, rs, rt = mi.rd, mi.rs, mi.rt
    fd, ft = mi.fd, mi.ft
    immu = u32(mi.imm)
    if op == "lw":
        def fn(m, regs, fregs, memory):
            try:
                regs[rd] = memory.load_u32((regs[rs] + immu) & _M)
            except AccessViolation as violation:
                violation.fault_native = idx
                raise
    elif op == "lwx":
        def fn(m, regs, fregs, memory):
            try:
                regs[rd] = memory.load_u32((regs[rs] + regs[rt]) & _M)
            except AccessViolation as violation:
                violation.fault_native = idx
                raise
    elif op == "sw":
        def fn(m, regs, fregs, memory):
            try:
                memory.store_u32((regs[rs] + immu) & _M, regs[rt])
            except AccessViolation as violation:
                violation.fault_native = idx
                raise
    elif op == "swx":
        def fn(m, regs, fregs, memory):
            try:
                memory.store_u32((regs[rs] + regs[rd]) & _M, regs[rt])
            except AccessViolation as violation:
                violation.fault_native = idx
                raise
    elif op in ("lb", "lbu", "lh", "lhu"):
        size, signed = _LOAD_SHAPES[op]

        def fn(m, regs, fregs, memory):
            try:
                regs[rd] = memory.load(
                    (regs[rs] + immu) & _M, size, signed) & _M
            except AccessViolation as violation:
                violation.fault_native = idx
                raise
    elif op in ("lbx", "lbux", "lhx", "lhux"):
        size, signed = _LOAD_SHAPES[op]

        def fn(m, regs, fregs, memory):
            try:
                regs[rd] = memory.load(
                    (regs[rs] + regs[rt]) & _M, size, signed) & _M
            except AccessViolation as violation:
                violation.fault_native = idx
                raise
    elif op in ("sb", "sh"):
        size = _STORE_SIZES[op]

        def fn(m, regs, fregs, memory):
            try:
                memory.store((regs[rs] + immu) & _M, size, regs[rt])
            except AccessViolation as violation:
                violation.fault_native = idx
                raise
    elif op in ("sbx", "shx"):
        size = _STORE_SIZES[op]

        def fn(m, regs, fregs, memory):
            try:
                memory.store((regs[rs] + regs[rd]) & _M, size, regs[rt])
            except AccessViolation as violation:
                violation.fault_native = idx
                raise
    elif op == "lfs":
        def fn(m, regs, fregs, memory):
            try:
                fregs[fd] = memory.load_f32((regs[rs] + immu) & _M)
            except AccessViolation as violation:
                violation.fault_native = idx
                raise
    elif op == "lfd":
        def fn(m, regs, fregs, memory):
            try:
                fregs[fd] = memory.load_f64((regs[rs] + immu) & _M)
            except AccessViolation as violation:
                violation.fault_native = idx
                raise
    elif op == "lfsx":
        def fn(m, regs, fregs, memory):
            try:
                fregs[fd] = memory.load_f32((regs[rs] + regs[rt]) & _M)
            except AccessViolation as violation:
                violation.fault_native = idx
                raise
    elif op == "lfdx":
        def fn(m, regs, fregs, memory):
            try:
                fregs[fd] = memory.load_f64((regs[rs] + regs[rt]) & _M)
            except AccessViolation as violation:
                violation.fault_native = idx
                raise
    elif op == "sfs":
        def fn(m, regs, fregs, memory):
            try:
                memory.store_f32((regs[rs] + immu) & _M, fregs[ft])
            except AccessViolation as violation:
                violation.fault_native = idx
                raise
    elif op == "sfd":
        def fn(m, regs, fregs, memory):
            try:
                memory.store_f64((regs[rs] + immu) & _M, fregs[ft])
            except AccessViolation as violation:
                violation.fault_native = idx
                raise
    elif op == "sfsx":
        def fn(m, regs, fregs, memory):
            try:
                memory.store_f32((regs[rs] + regs[rd]) & _M, fregs[ft])
            except AccessViolation as violation:
                violation.fault_native = idx
                raise
    elif op == "sfdx":
        def fn(m, regs, fregs, memory):
            try:
                memory.store_f64((regs[rs] + regs[rd]) & _M, fregs[ft])
            except AccessViolation as violation:
                violation.fault_native = idx
                raise
    else:
        return None
    return fn


def _sem_fp(mi):
    op = mi.op
    fd, fs, ft = mi.fd, mi.fs, mi.ft
    rd = mi.rd
    if op in ("fadds", "fsubs", "fmuls", "fdivs",
              "faddd", "fsubd", "fmuld", "fdivd"):
        base = op[:-1]
        single = op.endswith("s")
        fp_binop = semantics.fp_binop
        if single:
            def fn(m, regs, fregs, memory):
                fregs[fd] = round_f32(fp_binop(base, fregs[fs], fregs[ft]))
        else:
            def fn(m, regs, fregs, memory):
                fregs[fd] = fp_binop(base, fregs[fs], fregs[ft])
    elif op in ("fnegs", "fnegd", "fabss", "fabsd", "fmovs", "fmovd"):
        base = op[:-1]
        single = op.endswith("s")
        fp_unop = semantics.fp_unop
        if single:
            def fn(m, regs, fregs, memory):
                fregs[fd] = round_f32(fp_unop(base, fregs[fs]))
        else:
            def fn(m, regs, fregs, memory):
                fregs[fd] = fp_unop(base, fregs[fs])
    elif op in ("fceqs", "fclts", "fcles", "fceqd", "fcltd", "fcled"):
        pred = op[:-1]
        if pred == "fceq":
            def fn(m, regs, fregs, memory):
                regs[rd] = 1 if fregs[fs] == fregs[ft] else 0
        elif pred == "fclt":
            def fn(m, regs, fregs, memory):
                regs[rd] = 1 if fregs[fs] < fregs[ft] else 0
        else:
            def fn(m, regs, fregs, memory):
                regs[rd] = 1 if fregs[fs] <= fregs[ft] else 0
    else:
        return None
    return fn


def _sem_generic(mi, idx):
    """Fallback: route through the legacy executor (rare/cold ops)."""
    def fn(m, regs, fregs, memory):
        try:
            m.execute(mi)
        except AccessViolation as violation:
            violation.fault_native = idx
            raise
        except VMRuntimeError as err:
            err.fault_native = idx
            raise
    return fn


def _compile_native_body(mi, idx):
    """One straight-line native instruction: charge (in order) + effect."""
    sem = _sem_alu(mi)
    if sem is None:
        sem = _sem_mem(mi, idx)
    if sem is None:
        sem = _sem_fp(mi)
    if sem is None:
        if mi.op in ("div", "divu", "rem", "remu"):
            rd, rs, rt = mi.rd, mi.rs, mi.rt
            op = mi.op
            int_divide = semantics.int_divide

            def sem(m, regs, fregs, memory):
                try:
                    regs[rd] = int_divide(op, regs[rs], regs[rt])
                except VMRuntimeError as err:
                    err.fault_native = idx
                    raise
        else:
            sem = _sem_generic(mi, idx)
    if mi.category == "fused":
        # cc-profile peephole output: executes at zero issue cost.
        return sem

    def fn(m, regs, fregs, memory):
        m._charge(mi)
        sem(m, regs, fregs, memory)
    return fn


# ---------------------------------------------------------------------------
# terminator closures: fn(m, regs, fregs, memory) -> redirect | -2 | None
# ---------------------------------------------------------------------------

def _compile_native_term(mi, idx, spec):
    op = mi.op
    rs, rt = mi.rs, mi.rt
    target = mi.target
    untaken = -2 if spec.delay_slots else None
    charge = mi.category != "fused"

    if op in ("bcc", "fbcc"):
        test = _CC_TESTS[mi.pred]
        if charge:
            def fn(m, regs, fregs, memory):
                m._charge(mi)
                return target if test(m) else untaken
        else:
            def fn(m, regs, fregs, memory):
                return target if test(m) else untaken
        return _COND, fn
    if op == "beq":
        def fn(m, regs, fregs, memory):
            m._charge(mi)
            return target if regs[rs] == regs[rt] else untaken
        return _COND, fn
    if op == "bne":
        def fn(m, regs, fregs, memory):
            m._charge(mi)
            return target if regs[rs] != regs[rt] else untaken
        return _COND, fn
    if op in ("bltz", "blez", "bgtz", "bgez"):
        if op == "bltz":
            def taken(a):
                return a < 0
        elif op == "blez":
            def taken(a):
                return a <= 0
        elif op == "bgtz":
            def taken(a):
                return a > 0
        else:
            def taken(a):
                return a >= 0

        def fn(m, regs, fregs, memory):
            m._charge(mi)
            a = regs[rs]
            if a & _SIGN:
                a -= _WRAP
            return target if taken(a) else untaken
        return _COND, fn
    if op == "j":
        def fn(m, regs, fregs, memory):
            m._charge(mi)
            return target
        return _JUMP, fn
    if op == "jal":
        link = spec.reserved.get("ra", 31)
        ret = u32(mi.imm)

        def fn(m, regs, fregs, memory):
            m._charge(mi)
            regs[link] = ret
            return target
        return _JUMP, fn
    if op == "jr":
        def fn(m, regs, fregs, memory):
            m._charge(mi)
            return m.map_omni_target(regs[rs])
        return _JUMP, fn
    if op == "jalr":
        link = spec.reserved.get("ra", 31)
        ret = u32(mi.imm)

        def fn(m, regs, fregs, memory):
            m._charge(mi)
            regs[link] = ret
            return m.map_omni_target(regs[rs])
        return _JUMP, fn
    if op == "hostcall":
        index = mi.imm

        def fn(m, regs, fregs, memory):
            m._charge(mi)
            if m.hostcall is None:
                raise VMRuntimeError("hostcall without attached host")
            m.hostcall(m, index)
            return None
        return _HOST, fn
    if op == "trap":
        message = f"module trap {mi.imm}"
        code = mi.imm

        def fn(m, regs, fregs, memory):
            m._charge(mi)
            raise VMTrap(message, code)
        return _TRAP, fn
    raise VMRuntimeError(f"target op {op!r} is not a terminator")


def _is_term_op(op: str) -> bool:
    return op in _COND_OPS or op in _JUMP_OPS or op in ("hostcall", "trap")


# ---------------------------------------------------------------------------
# superinstruction fusion (gated per target by TargetSpec.fusion_pairs)
# ---------------------------------------------------------------------------

def _fuse_term_pair(i1, i2, idx1, idx2, spec):
    """Fuse a straight-line op into the terminator that follows it.

    The first half must be a non-faulting specializable op (``_sem_alu``,
    which includes the cc writers), so block fault accounting never has
    to unwind a partially-retired fused terminator.  Both halves charge
    cycles in original order.
    """
    sem1 = _sem_alu(i1)
    if sem1 is None:
        return None
    op2 = i2.op
    target = i2.target
    untaken = -2 if spec.delay_slots else None
    if op2 in ("bcc", "fbcc"):
        test = _CC_TESTS[i2.pred]

        def fn(m, regs, fregs, memory):
            m._charge(i1)
            sem1(m, regs, fregs, memory)
            m._charge(i2)
            return target if test(m) else untaken
        return _COND, fn
    if op2 in ("beq", "bne"):
        rs2, rt2 = i2.rs, i2.rt
        if op2 == "beq":
            def fn(m, regs, fregs, memory):
                m._charge(i1)
                sem1(m, regs, fregs, memory)
                m._charge(i2)
                return target if regs[rs2] == regs[rt2] else untaken
        else:
            def fn(m, regs, fregs, memory):
                m._charge(i1)
                sem1(m, regs, fregs, memory)
                m._charge(i2)
                return target if regs[rs2] != regs[rt2] else untaken
        return _COND, fn
    if op2 == "jr":
        rs2 = i2.rs

        def fn(m, regs, fregs, memory):
            m._charge(i1)
            sem1(m, regs, fregs, memory)
            m._charge(i2)
            return m.map_omni_target(regs[rs2])
        return _JUMP, fn
    if op2 == "j":
        def fn(m, regs, fregs, memory):
            m._charge(i1)
            sem1(m, regs, fregs, memory)
            m._charge(i2)
            return target
        return _JUMP, fn
    return None


def _fuse_body_pair(i1, i2, idx1, idx2):
    """Two straight-line ops run back-to-back in one closure.  Both
    halves execute strictly in order, so register aliasing and fault
    delivery behave exactly as unfused."""
    sem1 = _sem_alu(i1) or _sem_mem(i1, idx1)
    sem2 = _sem_alu(i2) or _sem_mem(i2, idx2)
    if sem1 is None or sem2 is None:
        return None

    def fn(m, regs, fregs, memory):
        m._charge(i1)
        sem1(m, regs, fregs, memory)
        m._charge(i2)
        sem2(m, regs, fregs, memory)
    return fn


# ---------------------------------------------------------------------------
# predecoded program + block cache
# ---------------------------------------------------------------------------

class ThreadedNativeProgram:
    """Predecoded translated module: per-index closures + lazy blocks.

    Holds no machine state — closures receive the machine and its
    register files per call — so one artifact serves every machine
    instance running the same translation (the content-addressed cache
    stores these in its in-memory predecode side table).
    """

    __slots__ = ("spec", "instrs", "steps", "blocks", "length", "_fusion")

    def __init__(self, spec: TargetSpec, instrs: list[MInstr]):
        self.spec = spec
        self.instrs = instrs
        self.length = len(instrs)
        self._fusion = frozenset(getattr(spec, "fusion_pairs", ()) or ())
        # steps[i]: (is_term, closure-or-None); terminators are compiled
        # lazily inside build_block (they need block context anyway).
        self.steps = [None] * len(instrs)
        self.blocks: list[tuple | None] = [None] * len(instrs)

    def _body_step(self, index: int):
        step = self.steps[index]
        if step is None:
            step = self.steps[index] = _compile_native_body(
                self.instrs[index], index)
        return step

    def build_block(self, index: int):
        """Build (and memoize) the block entered at native *index*.

        Returns ``(body, cats, total, term_kind, term_fn, term_mi,
        term_end, slot, fused)`` where ``body`` is a tuple of closures,
        ``cats`` the per-category instruction counts for the whole block
        (body + terminator, not the delay slot), ``total`` the number of
        instructions they represent, ``term_end`` the native index of
        the terminator's last instruction, and ``slot`` the predecoded
        delay-slot record ``(slot_fn, slot_mi)`` or None.
        """
        instrs = self.instrs
        spec = self.spec
        n = self.length
        body = []
        cats: dict[str, int] = {}
        total = 0
        fused = 0
        term_kind = 0
        term_fn = None
        term_mi = None
        term_end = index - 1
        i = index
        while i < n:
            mi = instrs[i]
            op = mi.op
            if _is_term_op(op):
                term_end = i
                term_mi = mi
                cats[mi.category] = cats.get(mi.category, 0) + 1
                total += 1
                term_kind, term_fn = _compile_native_term(mi, i, spec)
                break
            nxt = i + 1
            if nxt < n and mi.category != "fused" \
                    and instrs[nxt].category != "fused":
                mi2 = instrs[nxt]
                if (op, mi2.op) in self._fusion:
                    if _is_term_op(mi2.op):
                        made = _fuse_term_pair(mi, mi2, i, nxt, spec)
                        if made is not None:
                            term_end = nxt
                            term_mi = mi2
                            cats[mi.category] = cats.get(mi.category, 0) + 1
                            cats[mi2.category] = cats.get(mi2.category, 0) + 1
                            total += 2
                            fused += 1
                            term_kind, term_fn = made
                            break
                    else:
                        fn = _fuse_body_pair(mi, mi2, i, nxt)
                        if fn is not None:
                            body.append(fn)
                            cats[mi.category] = cats.get(mi.category, 0) + 1
                            cats[mi2.category] = cats.get(mi2.category, 0) + 1
                            total += 2
                            fused += 1
                            i += 2
                            continue
            body.append(self._body_step(i))
            cats[mi.category] = cats.get(mi.category, 0) + 1
            total += 1
            i += 1
        slot = None
        if spec.delay_slots and term_kind in (_COND, _JUMP) \
                and term_end + 1 < n:
            slot_mi = instrs[term_end + 1]
            slot = (self._body_step(term_end + 1), slot_mi)
        block = (tuple(body), tuple(cats.items()), total, term_kind,
                 term_fn, term_mi, term_end, slot, fused)
        self.blocks[index] = block
        return block


def predecode_native(spec: TargetSpec,
                     instrs: list[MInstr]) -> ThreadedNativeProgram:
    """Predecode a translated module, reporting ``execute.predecode_ms``.

    Per-instruction closures and blocks are built lazily on first
    execution; this constructor only sizes the dispatch tables, so the
    predecode cost reported here is the load-time share.
    """
    start = time.perf_counter()
    threaded = ThreadedNativeProgram(spec, instrs)
    if metrics.active():
        metrics.count("execute.predecode_ms",
                      (time.perf_counter() - start) * 1000.0)
    return threaded


# ---------------------------------------------------------------------------
# the threaded machine
# ---------------------------------------------------------------------------

class ThreadedTargetMachine(TargetMachine):
    """TargetMachine with block dispatch over a predecoded program.

    ``cycles``, register state, memory, and the virtual exception model
    are bit-identical to the legacy executor; ``instret``/fuel and the
    Figure-1 category counters are charged per block, so fuel cuts land
    at block boundaries (at most one block late), exactly like the
    interpreter-side threaded engine.
    """

    def __init__(self, spec, instrs, memory, omni_to_native,
                 hostcall=None, fuel=100_000_000,
                 threaded: ThreadedNativeProgram | None = None):
        if threaded is None:
            threaded = predecode_native(spec, instrs)
        # Use the artifact's instruction list so closure-bound MInstr
        # objects and self.instrs are the same objects (operand/latency
        # caches land in one place).
        super().__init__(spec, threaded.instrs, memory, omni_to_native,
                         hostcall, fuel)
        self._threaded = threaded
        self._blocks_run = 0
        self._fused_run = 0

    def run(self, entry_native_index: int) -> int:
        blocks_before = self._blocks_run
        fused_before = self._fused_run
        try:
            return super().run(entry_native_index)
        finally:
            if metrics.active():
                blocks = self._blocks_run - blocks_before
                fused = self._fused_run - fused_before
                if blocks:
                    metrics.count("execute.blocks", blocks)
                if fused:
                    metrics.count("execute.fused", fused)

    def _charge_fault_prefix(self, start: int, fault: int) -> None:
        """Account instret/categories for block instructions up to and
        including the faulting one (the legacy per-instruction loop had
        already retired exactly these)."""
        self.instret += fault - start + 1
        counts = self.category_counts
        instrs = self.instrs
        for i in range(start, fault + 1):
            counts[instrs[i].category] += 1

    def _run(self, entry_native_index: int) -> int:
        self.pc = entry_native_index
        from repro.sfi.policy import RETURN_SENTINEL

        self.regs[self.link_reg] = RETURN_SENTINEL
        program = self._threaded
        blocks = program.blocks
        build = program.build_block
        n = program.length
        regs = self.regs
        fregs = self.fregs
        memory = self.memory
        counts = self.category_counts
        blocks_run = 0
        fused_run = 0
        try:
            while not self.halted:
                pc = self.pc
                if pc == 0xFFFFFFFF or pc >= n:
                    if pc == 0xFFFFFFFF:
                        break
                    raise VMRuntimeError(f"native pc out of range: {pc}")
                block = blocks[pc]
                if block is None:
                    block = build(pc)
                (body, cats, total, term_kind, term_fn, term_mi,
                 term_end, slot, fused) = block
                blocks_run += 1
                fused_run += fused
                try:
                    for fn in body:
                        fn(self, regs, fregs, memory)
                except AccessViolation as violation:
                    fault = violation.fault_native
                    self._charge_fault_prefix(pc, fault)
                    redirect = self._deliver_violation(
                        self.instrs[fault], violation)
                    self.pc = redirect
                    self._branch_taken_penalty()
                    if self.instret > self.fuel:
                        raise FuelExhausted("target simulation exceeded fuel")
                    continue
                except VMRuntimeError as err:
                    fault = getattr(err, "fault_native", None)
                    if fault is not None:
                        self._charge_fault_prefix(pc, fault)
                    raise
                self.instret += total
                for category, count in cats:
                    counts[category] += count
                if self.instret > self.fuel:
                    raise FuelExhausted("target simulation exceeded fuel")
                if term_fn is None:
                    # Block ran off the end of the code: the legacy loop
                    # faults on the next fetch.
                    self.pc = n
                    continue
                self.pc = term_end
                try:
                    redirect = term_fn(self, regs, fregs, memory)
                except AccessViolation as violation:
                    # Only a hostcall terminator can get here (fused
                    # terminators are non-faulting); the legacy loop
                    # delivers and redirects with a taken-branch penalty.
                    redirect = self._deliver_violation(term_mi, violation)
                    self.pc = redirect
                    self._branch_taken_penalty()
                    continue
                if term_kind == _COND:
                    if slot is not None:
                        slot_fn, slot_mi = slot
                        if not (term_mi.annul and redirect == -2):
                            self.instret += 1
                            counts[slot_mi.category] += 1
                            slot_fn(self, regs, fregs, memory)
                        if redirect == -2:
                            self.pc = term_end + 2
                        else:
                            self.pc = redirect
                            self._branch_taken_penalty()
                    else:
                        if redirect is None or redirect == -2:
                            self.pc = term_end + 1
                        else:
                            self.pc = redirect
                            self._branch_taken_penalty()
                elif term_kind == _JUMP:
                    if slot is not None:
                        slot_fn, slot_mi = slot
                        self.instret += 1
                        counts[slot_mi.category] += 1
                        slot_fn(self, regs, fregs, memory)
                    self.pc = redirect
                    self._branch_taken_penalty()
                else:  # _HOST (trap raises out of the closure)
                    self.pc = term_end + 1
        finally:
            self._blocks_run += blocks_run
            self._fused_run += fused_run
        return s32(self.exit_code if self.halted else self.regs[
            self.spec.int_map.get(1, 1)])
