"""PowerPC 601 target model.

Characteristics modeled:

* 32 integer registers; OmniVM maps to r8..r23 with the runtime holding
  SFI registers and a global pointer in the high caller-saved range;
* 16-bit immediates (``addis``/``ori`` pairs for 32-bit constants);
* **indexed addressing** (``lwzx``/``stwx``): OmniVM's indexed mode maps
  one-to-one (no ``addr`` expansion, unlike MIPS) and the SFI store
  sequence is one instruction shorter (mask, then store through the
  segment-base register with ``stwx``) — both effects the paper's
  Figure 1 shows;
* condition-register branches: *every* conditional branch needs an
  explicit ``cmpw``/``cmpwi`` first (the dominant ``cmp`` expansion the
  paper reports for PPC), and compares have 2-cycle latency to the
  branch;
* dual issue (601-style): one integer op may pair with one FP op or one
  branch per cycle;
* no delay slots; 2-cycle taken-branch penalty.
"""

from __future__ import annotations

from repro.targets.base import MInstr, TargetSpec, Timing

AT = 0            # r0 (quirky on real PPC; fine as scratch here)
SFI_MASK = 24
SFI_BASE = 25
SFI_CODE_BASE = 26
GP = 27
SP = 1            # PPC convention: r1 is the stack pointer
RA = 31           # stands in for the link register

INT_MAP = {i: 8 + i for i in range(16)}
INT_MAP[15] = SP
INT_MAP[14] = RA

FP_MAP = {i: i for i in range(16)}

_FP_OPS_PREFIXES = ("f", "lf", "sf", "cvt")


def _is_fp_or_branch(instr: MInstr) -> bool:
    if not instr.cclass:
        fpb = (instr.op.startswith(_FP_OPS_PREFIXES) or instr.is_branch()
               or instr.op in ("bcc", "fbcc"))
        instr.cclass = "fpb" if fpb else "int"
    return instr.cclass == "fpb"


def _is_int_op(instr: MInstr) -> bool:
    return not _is_fp_or_branch(instr)


def _dual_issue(first: MInstr, second: MInstr) -> bool:
    """PPC601: integer unit + (FPU or branch unit) issue in parallel."""
    if _is_int_op(first) and _is_fp_or_branch(second):
        return True
    if _is_fp_or_branch(first) and _is_int_op(second):
        return True
    return False


def _timing() -> Timing:
    return Timing(
        name="ppc601",
        load_latency=2,
        mul_latency=5,
        div_latency=36,
        fp_add_latency=4,
        fp_mul_latency=5,
        fp_div_latency=31,
        cmp_latency=2,  # multi-cycle compare latency the paper calls out
        taken_branch_penalty=2,
        has_delay_slot=False,
        dual_issue=_dual_issue,
    )


#: Dominant dynamic (op, op) pairs in PowerPC translations of the SPEC
#: workloads (cmp/cmpi+bcc lead; the rest are move/constant/memory
#: traffic).
FUSION_PAIRS = (
    ("cmpi", "bcc"), ("addi", "mov"), ("mov", "ori"), ("mov", "mov"),
    ("lui", "mov"), ("lw", "lw"), ("mov", "sw"), ("lui", "ori"),
    ("cmp", "bcc"), ("sw", "sw"), ("slli", "lui"), ("mov", "lw"),
    ("lw", "cmpi"), ("sw", "mov"), ("mov", "j"), ("slli", "mov"),
    ("ori", "jr"), ("andi", "mov"), ("fcmp", "fbcc"), ("fcmps", "fbcc"),
)


def spec() -> TargetSpec:
    return TargetSpec(
        name="ppc",
        num_regs=32,
        num_fregs=32,
        int_map=dict(INT_MAP),
        fp_map=dict(FP_MAP),
        reserved={
            "at": AT,
            "sfi_mask": SFI_MASK,
            "sfi_base": SFI_BASE,
            "sfi_code_base": SFI_CODE_BASE,
            "gp": GP,
            "sp": SP,
            "ra": RA,
        },
        timing=_timing(),
        delay_slots=False,
        has_indexed_mem=True,
        imm_bits=16,
        fusion_pairs=FUSION_PAIRS,
    )
