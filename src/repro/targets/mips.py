"""MIPS R4400 target model.

Characteristics modeled (the ones the paper's numbers depend on):

* 32 integer registers — OmniVM's 16 map 1:1 onto r8..r23, with the
  runtime reserving r1 (assembler scratch ``at``), r24/r25 (SFI data-mask
  and data-segment-base dedicated registers), r28 (``gp``), r29 (sp),
  r31 (ra);
* 16-bit immediates: 32-bit constants need ``lui``+``ori`` (the Figure-1
  ``ldi`` category);
* no indexed addressing: OmniVM ``lwx`` needs an ``addu`` first (the
  ``addr`` category);
* compare-and-branch only against zero (``beq``/``bne``/``bltz``...):
  general OmniVM compare-and-branch needs ``slt`` + ``bne`` (``cmp``
  category), and only ``slti`` exists for immediate compares (driving the
  ``ldi`` overhead the paper observes in ``eqntott``/``compress``);
* **branch delay slots**, filled by the scheduler or with ``nop``
  (``bnop`` category);
* superpipelined timing: 2-cycle load-use latency, multi-cycle mul/div,
  1-cycle taken-branch penalty beyond the slot.
"""

from __future__ import annotations

from repro.targets.base import TargetSpec, Timing

# Register conventions.
AT = 1          # assembler / translator scratch
SFI_MASK = 24   # dedicated: segment offset mask
SFI_BASE = 25   # dedicated: data segment base
GP = 28         # global pointer
SP = 29
RA = 31
SFI_CODE_BASE = 26  # dedicated: code segment base (k0)
SFI_CODE_MASK = 27  # dedicated: code offset+alignment mask (k1)

#: OmniVM integer registers r0..r15 -> MIPS r8..r23.
INT_MAP = {i: 8 + i for i in range(16)}
INT_MAP[15] = SP   # OmniVM sp -> MIPS sp
INT_MAP[14] = RA   # OmniVM ra -> MIPS ra

FP_MAP = {i: i for i in range(16)}


def _timing() -> Timing:
    return Timing(
        name="mips-r4400",
        load_latency=2,
        mul_latency=10,
        div_latency=36,
        fp_add_latency=4,
        fp_mul_latency=7,
        fp_div_latency=23,
        cmp_latency=1,
        taken_branch_penalty=1,
        has_delay_slot=True,
        dual_issue=None,
    )


#: Dominant dynamic (op, op) pairs in MIPS translations of the SPEC
#: workloads, measured by the threaded-engine pair profiler; the
#: threaded engine fuses these into superinstructions.
FUSION_PAIRS = (
    ("ori", "add"), ("lui", "ori"), ("addi", "mov"), ("lw", "lw"),
    ("slti", "bne"), ("mov", "ori"), ("mov", "mov"), ("sw", "sw"),
    ("lui", "mov"), ("add", "and"), ("and", "or"), ("slt", "bne"),
    ("addi", "or"), ("mov", "sw"), ("slli", "lui"), ("sw", "mov"),
    ("or", "jr"), ("addi", "lw"), ("add", "lw"),
)


def spec() -> TargetSpec:
    return TargetSpec(
        name="mips",
        num_regs=32,
        num_fregs=32,
        int_map=dict(INT_MAP),
        fp_map=dict(FP_MAP),
        reserved={
            "at": AT,
            "sfi_mask": SFI_MASK,
            "sfi_base": SFI_BASE,
            "sfi_code_base": SFI_CODE_BASE,
            "sfi_code_mask": SFI_CODE_MASK,
            "gp": GP,
            "sp": SP,
            "ra": RA,
        },
        timing=_timing(),
        delay_slots=True,
        has_indexed_mem=False,
        imm_bits=16,
        fusion_pairs=FUSION_PAIRS,
    )
