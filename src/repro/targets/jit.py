"""Trace-based superblock JIT tier for the simulated targets.

The native counterpart of :mod:`repro.omnivm.jit`: when a block entry
of the threaded target engine (:mod:`repro.targets.threaded`) crosses a
heat threshold, the hot chain of native blocks is stitched across
likely-taken branches into a **superblock** and compiled to a single
generated Python function.  Register indexes, immediates, category
counts and — crucially — the whole per-arch cycle model are folded into
the emitted source, so a hot loop iteration executes as one Python
frame with no per-instruction dispatch, no ``_charge`` calls, and no
closure chain.

What the generated code folds in, bit-identically to the threaded tier
(which is itself bit-identical to the legacy executor):

* **cycle accounting** — the scoreboard (`TargetMachine._ready`), the
  issue cursor, dual-issue pairing (PPC/x86) and the x86
  memory-resident-register surcharge are computed on *locals*; the
  read/write key sets, latencies and static pairability are resolved at
  compile time, so a typical instruction costs one or two integer
  compares.  Every side exit writes the scoreboard back before
  returning, so ``cycles`` matches the threaded tier exactly.
* **SFI dynamic guard chains** — the sandboxing sequences the rewriter
  inserts (``category="sfi"``) are straight-line ALU ops and are
  emitted inline like any other instruction.  The trace former never
  reorders instructions, and it refuses to place a *guarded* side exit
  on a branch that is part of (or immediately follows) a guard chain:
  such a branch ends the trace with an unguarded two-way exit instead,
  so a chain is never split across a deopt and mutated guards fault
  exactly as they do under the threaded tier.
* **per-site inline memory caches** keyed on ``Memory.perm_epoch``
  (shared machinery in :mod:`repro.jitcore`), flushed after inlined
  hostcalls.

Delay slots (MIPS/SPARC) are formed into the trace: the slot of an
on-trace branch executes before the side-exit guard (its fault commits
``pc`` at the branch, exactly like the threaded tier, and propagates to
the host unhandled), annulled untaken branches skip the slot, and the
taken-branch penalty lands after the slot.

The deopt contract matches the omni JIT: every side exit commits
``pc``/``instret``/``cycles``/category counts before returning to the
dispatcher; faults commit the exact retired prefix and annotate
``fault_native``; fuel is checked at superblock boundaries (backedge,
hostcall, trap, run-off-end) — the same documented relaxation as the
block-level checks of the threaded tier.

Compiled superblocks bind no machine state and are shared between
machines via the predecode side table of
:class:`~repro.cache.TranslationCache` under ``("jit-native", digest,
arch, options_digest, entry)`` keys, which digest-filtered invalidation
(module revoke/relink) drops together with the ``("predecode-native",
...)`` artifacts.
"""

from __future__ import annotations

import time

from repro import metrics
from repro.errors import (
    AccessViolation,
    FuelExhausted,
    VMRuntimeError,
)
from repro.jitcore import (
    CMP as _CMP,
    CMP_INV as _CMP_INV,
    FLUSH as _FLUSH,
    JIT_HEAT,
    MAX_TRACE_BLOCKS,
    MAX_TRACE_INSTRS,
    Emitter as _Emitter,
    SideExitPromotion,
    base_exec_globals,
    cache_cells,
    emit_cvt as _emit_cvt,
    emit_ext as _emit_ext,
    emit_load_refill as _emit_load_refill,
    emit_store_refill as _emit_store_refill,
)
from repro.omnivm import semantics
from repro.targets.threaded import (
    _COND,
    _COND_OPS,
    _JUMP,
    _JUMP_OPS,
    _LOAD_SHAPES,
    _STORE_SIZES,
    ThreadedTargetMachine,
    _is_term_op,
)
from repro.utils.bits import s32, u32

_M = 0xFFFFFFFF
_SIGN = 0x80000000
_WRAP = 0x100000000

#: Assembly-time placeholder for "write the scoreboard/cycle locals and
#: the condition codes back to the machine" — expanded once the full
#: set of touched scoreboard keys is known, so an exit emitted early in
#: a looped trace also syncs keys first written later in the iteration.
_SYNC = "_SYNCSTATE_"

__all__ = [
    "JIT_HEAT",
    "JitTargetMachine",
    "compile_native_superblock",
    "native_superblock_source",
]

_EXEC_GLOBALS = base_exec_globals()

#: Straight-line ops the emitter covers (everything else would fall to
#: ``TargetMachine.execute`` in the threaded tier and makes the
#: enclosing block untraceable).
_ALU_OPS = frozenset(
    "add addi sub mul and andi or ori xor xori nor sll slli srl srli "
    "sra srai li lui mov slt sltu slti sltiu sext8 sext16 zext8 zext16 "
    "cmp subcc cmpi setcc fcmp fcmps sethnd nop".split()
)
_DIV_OPS = frozenset("div divu rem remu".split())
_FP_OPS = frozenset(
    "fadds fsubs fmuls fdivs faddd fsubd fmuld fdivd "
    "fnegs fnegd fabss fabsd fmovs fmovd "
    "fceqs fclts fcles fceqd fcltd fcled".split()
)
_CVT_OPS = frozenset(
    "cvtdw cvtsw cvtdwu cvtswu cvtwd cvtws cvtwud cvtwus cvtds "
    "cvtsd".split()
)
_MEM_OPS = frozenset(_LOAD_SHAPES) | frozenset(_STORE_SIZES) | frozenset(
    "lw lwx sw swx lfs lfd lfsx lfdx sfs sfd sfsx sfdx".split()
)
#: Unsigned taken-expressions for the MIPS-style register branches; the
#: signed compares against zero reduce to sign-bit tests on the raw u32.
_BR_TAKEN = {
    "bltz": "regs[{rs}] >= 0x80000000",
    "bgez": "regs[{rs}] < 0x80000000",
    "blez": "(regs[{rs}] == 0 or regs[{rs}] >= 0x80000000)",
    "bgtz": "0 < regs[{rs}] < 0x80000000",
}
_BR_UNTAKEN = {
    "bltz": "regs[{rs}] < 0x80000000",
    "bgez": "regs[{rs}] >= 0x80000000",
    "blez": "0 < regs[{rs}] < 0x80000000",
    "bgtz": "(regs[{rs}] == 0 or regs[{rs}] >= 0x80000000)",
}


class _Unsupported(Exception):
    """Trace formation hit an op outside the emitter's vocabulary."""


def _supported(mi) -> bool:
    op = mi.op
    return (op in _ALU_OPS or op in _MEM_OPS or op in _FP_OPS
            or op in _DIV_OPS or op in _CVT_OPS)


# ---------------------------------------------------------------------------
# trace walker state
# ---------------------------------------------------------------------------

class _Trace:
    """Emission state for one native superblock.

    Tracks — entirely at compile time — the retired-but-uncommitted
    instruction count and category tallies, the set of scoreboard keys
    the trace touches, the identity of the previously *charged*
    instruction (for dual-issue pairing and ``_last_issued`` restore),
    and the scalar pair-open flag.  ``prev`` is one of ``("static", k)``
    (the instruction at index ``k`` charged last), ``("none",)`` (a
    taken-branch penalty reset the pair window) or ``("runtime",)``
    (nothing charged yet this call — the machine's own state, loaded
    into ``_li``/``_po`` at entry, is current).
    """

    def __init__(self, program, entry, overrides):
        self.program = program
        self.instrs = program.instrs
        self.n = program.length
        self.spec = program.spec
        self.timing = program.spec.timing
        self.dual = self.timing.dual_issue is not None
        self.delay = program.spec.delay_slots
        self.entry = entry
        self.overrides = overrides or {}
        self.link = program.spec.reserved.get("ra", 31)
        self.em = _Emitter()
        self.keys: dict[tuple, str] = {}
        self.uses_cc = False
        self.total = 0
        self.pending = 0
        self.pcats: dict[str, int] = {}
        self.block_entry = entry
        self.block_pending = 0
        self.block_pcats: dict[str, int] = {}
        self.prev: tuple = ("runtime",)
        self.po = "runtime"  # scalar pair-open: "true" | "false" | "runtime"

    def key_name(self, key) -> str:
        name = self.keys.get(key)
        if name is None:
            kind, idx = key
            name = "_tcc" if kind == "cc" else f"_t{kind}{idx}"
            self.keys[key] = name
        return name

    def retire(self, mi) -> None:
        self.total += 1
        self.pending += 1
        self.pcats[mi.category] = self.pcats.get(mi.category, 0) + 1

    def start_block(self, index) -> None:
        self.block_entry = index
        self.block_pending = self.pending
        self.block_pcats = dict(self.pcats)

    def commit_reset(self) -> None:
        """An inline hostcall committed everything retired so far."""
        self.pending = 0
        self.pcats = {}
        self.block_pending = 0
        self.block_pcats = {}


# ---------------------------------------------------------------------------
# cycle model emission
# ---------------------------------------------------------------------------

def _static_extra(w, reads, writes) -> int:
    """x86 memory-resident-register surcharge, fully static."""
    timing = w.timing
    if not timing.memory_reg_cost:
        return 0
    threshold = timing.memory_reg_threshold
    operands = 0
    for kind, index in reads:
        if kind == "r" and index >= threshold:
            operands += 1
    for kind, index in writes:
        if kind == "r" and index >= threshold:
            operands += 1
    if operands > 1:
        return timing.memory_reg_cost * (operands - 1)
    return 0


def _static_pairable(w, prev_mi, mi) -> bool:
    """Mirror ``_charge``'s pairing test for two known instructions."""
    if not w.timing.dual_issue(prev_mi, mi):
        return False
    written = prev_mi.cached_writes()
    if not written:
        return True
    return not any(read in written for read in mi.cached_reads())


def _emit_charge(w, em, k, depth=0) -> None:
    """Fold one ``TargetMachine._charge`` into straight-line locals.

    Invariant (holds for every charge shape): after a charge,
    ``cycles == _last_issue_cycle`` — ``issue_cycle >= _lic + 1 >
    cycles`` unpaired, ``issue_cycle == _lic + extra >= cycles``
    paired — so the generated code updates ``_cy`` unconditionally.
    """
    mi = w.instrs[k]
    if mi.category == "fused":
        return  # zero issue cost; does not touch the pair window
    reads = mi.cached_reads()
    writes = mi.cached_writes()
    read_keys = list(dict.fromkeys(reads))
    write_keys = list(dict.fromkeys(writes))
    extra = _static_extra(w, reads, writes)
    lat = w.timing.result_latency(mi)
    rnames = [w.key_name(key) for key in read_keys]

    paired_check = None
    if w.dual:
        if w.prev[0] == "static":
            prev_mi = w.instrs[w.prev[1]]
            if _static_pairable(w, prev_mi, mi):
                paired_check = "_po and {stall} <= _lic"
        elif w.prev[0] == "runtime":
            paired_check = ("_po and _li is not None and {stall} <= _lic "
                            f"and _du(_li, _instrs[{k}]) "
                            f"and not _dp(_instrs[{k}], _li)")

    if paired_check is None:
        em.emit("_ic = _lic + 1", depth)
        for name in rnames:
            em.emit(f"if {name} > _ic:", depth)
            em.emit(f"    _ic = {name}", depth)
        if w.dual:
            em.emit("_po = True", depth)
    else:
        if not rnames:
            cond = paired_check.format(stall="0").replace(
                "0 <= _lic", "_lic >= 0")
        elif len(rnames) == 1:
            cond = paired_check.format(stall=rnames[0])
        else:
            em.emit(f"_st = {rnames[0]}", depth)
            for name in rnames[1:]:
                em.emit(f"if {name} > _st:", depth)
                em.emit(f"    _st = {name}", depth)
            cond = paired_check.format(stall="_st")
        em.emit(f"if {cond}:", depth)
        em.emit("    _ic = _lic", depth)
        em.emit("    _po = False", depth)
        em.emit("else:", depth)
        em.emit("    _ic = _lic + 1", depth)
        for name in rnames:
            em.emit(f"    if {name} > _ic:", depth)
            em.emit(f"        _ic = {name}", depth)
        em.emit("    _po = True", depth)
    if extra:
        em.emit(f"_ic += {extra}", depth)
    em.emit("_cy = _ic", depth)
    for key in write_keys:
        em.emit(f"{w.key_name(key)} = _ic + {lat}", depth)
    em.emit("_lic = _ic", depth)
    w.prev = ("static", k)
    if not w.dual:
        w.po = "true"


def _emit_penalty(w, em, depth=0) -> None:
    """Local ``_branch_taken_penalty`` for an on-trace taken branch."""
    em.emit(f"_cy += {w.timing.taken_branch_penalty}", depth)
    em.emit("_lic = _cy", depth)
    if w.dual:
        em.emit("_po = False", depth)
    w.prev = ("none",)
    if not w.dual:
        w.po = "false"


def _emit_exit_state(w, em, pc, depth=0, pending=None, pcats=None,
                     prev=None) -> None:
    """Commit architectural state for a side exit / fault / raise:
    scoreboard + cycles (via the ``_SYNC`` placeholder), issue-window
    statics, ``instret``, category counts, and ``pc``."""
    em.emit(_SYNC, depth)
    prev = w.prev if prev is None else prev
    if prev[0] == "static":
        em.emit(f"m._last_issued = _instrs[{prev[1]}]", depth)
    elif prev[0] == "none":
        em.emit("m._last_issued = None", depth)
    else:
        em.emit("m._last_issued = _li", depth)
    if w.dual:
        em.emit("m._pair_open = _po", depth)
    elif w.po == "runtime":
        em.emit("m._pair_open = _po", depth)
    else:
        em.emit(f"m._pair_open = {w.po == 'true'}", depth)
    count = w.pending if pending is None else pending
    cats = w.pcats if pcats is None else pcats
    if count:
        em.emit(f"m.instret += {count}", depth)
    for cat in sorted(cats):
        em.emit(f"_ct[{cat!r}] += {cats[cat]}", depth)
    em.emit(f"m.pc = {pc}", depth)


# ---------------------------------------------------------------------------
# straight-line instruction emission
# ---------------------------------------------------------------------------

def _emit_fault_commit(w, em, k, fault_pc, depth, mark_final) -> None:
    """Handler body for a faulting memory/div access: annotate the
    faulting native index, commit the retired prefix (the charge is
    already in the locals), and re-raise."""
    em.emit(f"_v.fault_native = {k}", depth)
    if mark_final:
        em.emit("_v.fault_final = True", depth)
    _emit_exit_state(w, em, fault_pc, depth)
    em.emit("raise", depth)


def _mem_fault_ctx(mode, w, term_k):
    """(fault_pc, mark_final, commit) for the three emission modes."""
    if mode == "body":
        return w.block_entry, False, True
    if mode == "slot_local":
        return term_k, True, True
    return term_k, True, False  # slot_direct: state already committed


def _emit_mem(w, em, k, depth, mode, term_k) -> None:
    """One memory op, mirroring ``_sem_mem`` exactly: same address
    arithmetic, same accessor on the slow path (so the raised
    AccessViolation is identical), plus the inline-cache fast path."""
    mi = w.instrs[k]
    op = mi.op
    rd, rs, rt, fd, ft = mi.rd, mi.rs, mi.rt, mi.fd, mi.ft
    immu = u32(mi.imm)
    fault_pc, mark_final, commit = _mem_fault_ctx(mode, w, term_k)

    def guard(d):
        em.emit("except AccessViolation as _v:", d)
        if commit:
            _emit_fault_commit(w, em, k, fault_pc, d + 1, mark_final)
        else:
            em.emit(f"_v.fault_native = {k}", d + 1)
            em.emit("_v.fault_final = True", d + 1)
            em.emit("raise", d + 1)

    indexed = op.endswith("x")
    if op in _STORE_SIZES or op in ("sfs", "sfd", "sfsx", "sfdx"):
        index_reg = rd  # indexed stores use rd as the index register
    else:
        index_reg = rt
    if indexed:
        addr = f"(regs[{rs}] + regs[{index_reg}]) & {_M:#x}"
    else:
        addr = f"(regs[{rs}] + {immu}) & {_M:#x}"

    if op in _LOAD_SHAPES:
        size, signed = _LOAD_SHAPES[op]
        sid = em.load_site()
        if size == 4:
            fast = [f"regs[{rd}] = u32_at(_ld{sid}, _ad - _lb{sid})[0]"]
            slow = f"regs[{rd}] = memory.load_u32(_ad)"
        else:
            slow = (f"regs[{rd}] = memory.load(_ad, {size}, {signed})"
                    f" & {_M:#x}")
            if size == 1:
                if signed:
                    fast = [f"_v = _ld{sid}[_ad - _lb{sid}]",
                            f"regs[{rd}] = _v | 0xffffff00 "
                            f"if _v & 0x80 else _v"]
                else:
                    fast = [f"regs[{rd}] = _ld{sid}[_ad - _lb{sid}]"]
            elif signed:
                fast = [f"_v = u16_at(_ld{sid}, _ad - _lb{sid})[0]",
                        f"regs[{rd}] = _v | 0xffff0000 "
                        f"if _v & 0x8000 else _v"]
            else:
                fast = [f"regs[{rd}] = u16_at(_ld{sid}, _ad - _lb{sid})[0]"]
        em.emit(f"_ad = {addr}", depth)
        if size == 1:
            em.emit(f"if _lb{sid} <= _ad < _ll{sid}:", depth)
        else:
            em.emit(f"if _lb{sid} <= _ad and _ad + {size} <= _ll{sid}:",
                    depth)
        for line in fast:
            em.emit(line, depth + 1)
        em.emit("else:", depth)
        em.emit("try:", depth + 1)
        em.emit(slow, depth + 2)
        guard(depth + 1)
        _emit_load_refill(em, sid, depth + 1)
        return
    if op in ("lfs", "lfd", "lfsx", "lfdx"):
        single = op.startswith("lfs")
        width = "f32" if single else "f64"
        size = 4 if single else 8
        sid = em.load_site()
        em.emit(f"_ad = {addr}", depth)
        em.emit(f"if _lb{sid} <= _ad and _ad + {size} <= _ll{sid}:", depth)
        em.emit(f"fregs[{fd}] = {width}_at(_ld{sid}, _ad - _lb{sid})[0]",
                depth + 1)
        em.emit("else:", depth)
        em.emit("try:", depth + 1)
        em.emit(f"fregs[{fd}] = memory.load_{width}(_ad)", depth + 2)
        guard(depth + 1)
        _emit_load_refill(em, sid, depth + 1)
        return
    if op in _STORE_SIZES:
        size = _STORE_SIZES[op]
        sid = em.store_site()
        if size == 4:
            fast = f"put_u32(_sd{sid}, _ad - _sb{sid}, regs[{rt}])"
            slow = f"memory.store_u32(_ad, regs[{rt}])"
        else:
            slow = f"memory.store(_ad, {size}, regs[{rt}])"
            if size == 1:
                fast = f"_sd{sid}[_ad - _sb{sid}] = regs[{rt}] & 0xff"
            else:
                fast = (f"put_u16(_sd{sid}, _ad - _sb{sid}, "
                        f"regs[{rt}] & 0xffff)")
        em.emit(f"_ad = {addr}", depth)
        if size == 1:
            em.emit(f"if _sb{sid} <= _ad < _sl{sid}:", depth)
        else:
            em.emit(f"if _sb{sid} <= _ad and _ad + {size} <= _sl{sid}:",
                    depth)
        em.emit(fast, depth + 1)
        em.emit("memory.write_count += 1", depth + 1)
        em.emit("else:", depth)
        em.emit("try:", depth + 1)
        em.emit(slow, depth + 2)
        guard(depth + 1)
        _emit_store_refill(em, sid, depth + 1)
        return
    if op in ("sfs", "sfsx"):
        # f32 stores round the double operand (overflowing to signed
        # infinity) before reinterpreting — keep the accessor call.
        em.emit("try:", depth)
        em.emit(f"memory.store_f32({addr}, fregs[{ft}])", depth + 1)
        guard(depth)
        return
    # sfd / sfdx
    sid = em.store_site()
    em.emit(f"_ad = {addr}", depth)
    em.emit(f"if _sb{sid} <= _ad and _ad + 8 <= _sl{sid}:", depth)
    em.emit(f"put_f64(_sd{sid}, _ad - _sb{sid}, fregs[{ft}])", depth + 1)
    # store_f64 issues two word stores; mirror its write accounting.
    em.emit("memory.write_count += 2", depth + 1)
    em.emit("else:", depth)
    em.emit("try:", depth + 1)
    em.emit(f"memory.store_f64(_ad, fregs[{ft}])", depth + 2)
    guard(depth + 1)
    _emit_store_refill(em, sid, depth + 1)


def _emit_alu(w, em, mi, depth) -> None:
    """Mirror ``_sem_alu`` exactly (no charge, no faults)."""
    op = mi.op
    rd, rs, rt = mi.rd, mi.rs, mi.rt
    immu = u32(mi.imm)
    two = {"add": ("+", True), "sub": ("-", True), "mul": ("*", True),
           "and": ("&", False), "or": ("|", False), "xor": ("^", False)}
    if op in two:
        sym, masked = two[op]
        expr = f"regs[{rs}] {sym} regs[{rt}]"
        em.emit(f"regs[{rd}] = ({expr}) & {_M:#x}" if masked
                else f"regs[{rd}] = {expr}", depth)
    elif op in ("addi", "andi", "ori", "xori"):
        sym = {"addi": "+", "andi": "&", "ori": "|", "xori": "^"}[op]
        expr = f"regs[{rs}] {sym} {immu}"
        em.emit(f"regs[{rd}] = ({expr}) & {_M:#x}" if op == "addi"
                else f"regs[{rd}] = {expr}", depth)
    elif op == "nor":
        em.emit(f"regs[{rd}] = (~(regs[{rs}] | regs[{rt}])) & {_M:#x}",
                depth)
    elif op in ("sll", "srl"):
        sym = "<<" if op == "sll" else ">>"
        expr = f"regs[{rs}] {sym} (regs[{rt}] & 31)"
        em.emit(f"regs[{rd}] = ({expr}) & {_M:#x}" if op == "sll"
                else f"regs[{rd}] = {expr}", depth)
    elif op in ("slli", "srli"):
        sh = mi.imm & 31
        sym = "<<" if op == "slli" else ">>"
        expr = f"regs[{rs}] {sym} {sh}"
        em.emit(f"regs[{rd}] = ({expr}) & {_M:#x}" if op == "slli"
                else f"regs[{rd}] = {expr}", depth)
    elif op in ("sra", "srai"):
        sh = f"(regs[{rt}] & 31)" if op == "sra" else str(mi.imm & 31)
        em.emit(f"_a = regs[{rs}]", depth)
        em.emit(f"if _a & {_SIGN:#x}:", depth)
        em.emit(f"    _a -= {_WRAP:#x}", depth)
        em.emit(f"regs[{rd}] = (_a >> {sh}) & {_M:#x}", depth)
    elif op == "li":
        em.emit(f"regs[{rd}] = {immu}", depth)
    elif op == "lui":
        # Like the legacy executor, the shifted value is not re-masked.
        em.emit(f"regs[{rd}] = {immu << 16}", depth)
    elif op == "mov":
        em.emit(f"regs[{rd}] = regs[{rs}]", depth)
    elif op == "slt":
        em.emit(f"_a = regs[{rs}]", depth)
        em.emit(f"_b = regs[{rt}]", depth)
        em.emit(f"if _a & {_SIGN:#x}:", depth)
        em.emit(f"    _a -= {_WRAP:#x}", depth)
        em.emit(f"if _b & {_SIGN:#x}:", depth)
        em.emit(f"    _b -= {_WRAP:#x}", depth)
        em.emit(f"regs[{rd}] = 1 if _a < _b else 0", depth)
    elif op == "sltu":
        em.emit(f"regs[{rd}] = 1 if regs[{rs}] < regs[{rt}] else 0", depth)
    elif op == "slti":
        b = immu - _WRAP if immu & _SIGN else immu
        em.emit(f"_a = regs[{rs}]", depth)
        em.emit(f"if _a & {_SIGN:#x}:", depth)
        em.emit(f"    _a -= {_WRAP:#x}", depth)
        em.emit(f"regs[{rd}] = 1 if _a < {b} else 0", depth)
    elif op == "sltiu":
        em.emit(f"regs[{rd}] = 1 if regs[{rs}] < {immu} else 0", depth)
    elif op in ("sext8", "sext16", "zext8", "zext16"):
        sub = _Emitter(em)
        _emit_ext(sub, mi)
        pad = "    " * depth
        em.lines.extend(pad + line for line in sub.lines)
    elif op in ("cmp", "subcc"):
        w.uses_cc = True
        em.emit(f"_a = regs[{rs}]", depth)
        em.emit(f"_b = regs[{rt}]", depth)
        em.emit("_ccu = (_a > _b) - (_a < _b)", depth)
        em.emit(f"if _a & {_SIGN:#x}:", depth)
        em.emit(f"    _a -= {_WRAP:#x}", depth)
        em.emit(f"if _b & {_SIGN:#x}:", depth)
        em.emit(f"    _b -= {_WRAP:#x}", depth)
        em.emit("_ccs = (_a > _b) - (_a < _b)", depth)
    elif op == "cmpi":
        w.uses_cc = True
        bs = immu - _WRAP if immu & _SIGN else immu
        em.emit(f"_a = regs[{rs}]", depth)
        em.emit(f"_ccu = (_a > {immu}) - (_a < {immu})", depth)
        em.emit(f"if _a & {_SIGN:#x}:", depth)
        em.emit(f"    _a -= {_WRAP:#x}", depth)
        em.emit(f"_ccs = (_a > {bs}) - (_a < {bs})", depth)
    elif op == "setcc":
        w.uses_cc = True
        em.emit(f"regs[{rd}] = 1 if {_cc_expr(mi.pred)} else 0", depth)
    elif op in ("fcmp", "fcmps"):
        w.uses_cc = True
        em.emit(f"_a = fregs[{mi.fs}]", depth)
        em.emit(f"_b = fregs[{mi.ft}]", depth)
        em.emit("_ccs = (_a > _b) - (_a < _b)", depth)
        em.emit("_ccu = _ccs", depth)
    elif op == "sethnd":
        em.emit(f"m.handler_omni = regs[{rs}]", depth)
    elif op == "nop":
        pass
    else:  # pragma: no cover - _supported() gates the vocabulary
        raise _Unsupported(op)


def _cc_expr(pred: str, invert: bool = False) -> str:
    """Condition-code predicate over the ``_ccs``/``_ccu`` locals."""
    if pred in ("ltu", "leu", "gtu", "geu"):
        var, base = "_ccu", pred[:-1]
    else:
        var, base = "_ccs", pred
    if invert:
        base = _CMP_INV[base]
    return f"{var} {_CMP[base]} 0"


# ---------------------------------------------------------------------------
# faulting / floating-point body ops
# ---------------------------------------------------------------------------

def _emit_div(w, em, k, depth, mode, term_k) -> None:
    mi = w.instrs[k]
    fault_pc, mark_final, commit = _mem_fault_ctx(mode, w, term_k)
    em.emit("try:", depth)
    em.emit(f"regs[{mi.rd}] = int_divide({mi.op!r}, regs[{mi.rs}], "
            f"regs[{mi.rt}])", depth + 1)
    em.emit("except VMRuntimeError as _v:", depth)
    if commit:
        _emit_fault_commit(w, em, k, fault_pc, depth + 1, mark_final)
    else:
        em.emit(f"_v.fault_native = {k}", depth + 1)
        em.emit("_v.fault_final = True", depth + 1)
        em.emit("raise", depth + 1)


def _emit_fp(w, em, k, depth, mode, term_k) -> None:
    """FP arithmetic, compares and moves, mirroring ``fp_binop`` /
    ``fp_unop`` / ``fp_compare`` — including the divide-by-zero trap,
    which the threaded tier raises *without* a fault prefix (the block
    commit stands at the last boundary; the charge is already done)."""
    mi = w.instrs[k]
    op = mi.op
    base, single = op[:-1], op.endswith("s")
    fd, fs, ft = mi.fd, mi.fs, mi.ft
    if base in ("fceq", "fclt", "fcle"):
        sym = {"fceq": "==", "fclt": "<", "fcle": "<="}[base]
        em.emit(f"regs[{mi.rd}] = 1 if fregs[{fs}] {sym} fregs[{ft}] "
                "else 0", depth)
        return
    if base in ("fneg", "fabs", "fmov"):
        expr = {"fneg": f"-fregs[{fs}]", "fabs": f"abs(fregs[{fs}])",
                "fmov": f"fregs[{fs}]"}[base]
        if single:
            expr = f"round_f32({expr})"
        em.emit(f"fregs[{fd}] = {expr}", depth)
        return
    if base == "fdiv":
        em.emit(f"if fregs[{ft}] == 0.0:", depth)
        if mode == "body":
            # The threaded tier's block commit stops at the block
            # boundary before the faulting block.
            _emit_exit_state(w, em, w.block_entry, depth + 1,
                             pending=w.block_pending, pcats=w.block_pcats)
        elif mode == "slot_local":
            _emit_exit_state(w, em, term_k, depth + 1)
        em.emit(f"    raise VMRuntimeError({semantics.FP_DIV_ZERO_MSG!r})",
                depth)
        expr = f"fregs[{fs}] / fregs[{ft}]"
    else:
        sym = {"fadd": "+", "fsub": "-", "fmul": "*"}[base]
        expr = f"fregs[{fs}] {sym} fregs[{ft}]"
    if single:
        expr = f"round_f32({expr})"
    em.emit(f"fregs[{fd}] = {expr}", depth)


def _emit_instr(w, em, k, depth, mode, term_k) -> None:
    """Charge + semantics for one straight-line instruction.

    *mode* selects the fault-commit contract: ``"body"`` (on-trace,
    charge in locals, faults commit with ``pc`` = block entry),
    ``"slot_local"`` (on-trace delay slot, faults commit with ``pc`` =
    the branch index and are marked final), ``"slot_direct"`` (delay
    slot on an already-committed exit path: charge via ``m._charge``,
    faults just annotate and re-raise).
    """
    mi = w.instrs[k]
    op = mi.op
    if mode == "slot_direct":
        if mi.category != "fused":
            em.emit(f"m._charge(_instrs[{k}])", depth)
    else:
        _emit_charge(w, em, k, depth)
    if op in _MEM_OPS:
        _emit_mem(w, em, k, depth, mode, term_k)
    elif op in _DIV_OPS:
        _emit_div(w, em, k, depth, mode, term_k)
    elif op in _FP_OPS:
        _emit_fp(w, em, k, depth, mode, term_k)
    elif op in _CVT_OPS:
        sub = _Emitter(em)
        _emit_cvt(sub, mi)
        pad = "    " * depth
        em.lines.extend(pad + line for line in sub.lines)
    elif op in _ALU_OPS:
        _emit_alu(w, em, mi, depth)
    else:  # pragma: no cover - _block_traceable gates the vocabulary
        raise _Unsupported(op)


# ---------------------------------------------------------------------------
# delay slots
# ---------------------------------------------------------------------------

def _emit_slot_local(w, em, slot_k, term_k) -> None:
    """Run the delay slot on-trace: retired into the pending counts,
    charged through the locals."""
    w.retire(w.instrs[slot_k])
    _emit_instr(w, em, slot_k, 0, "slot_local", term_k)


def _emit_slot_direct(w, em, slot_k, depth) -> None:
    """Run the delay slot on an exit path whose architectural state is
    already committed — mirror the dispatcher's direct retire+charge
    (``instret``/counts first, then the slot closure)."""
    mi = w.instrs[slot_k]
    em.emit("m.instret += 1", depth)
    em.emit(f"_ct[{mi.category!r}] += 1", depth)
    _emit_instr(w, em, slot_k, depth, "slot_direct", slot_k)


# ---------------------------------------------------------------------------
# terminators
# ---------------------------------------------------------------------------

def _branch_exprs(w, mi):
    """(taken, untaken) boolean expressions for a conditional branch."""
    op = mi.op
    if op == "beq":
        return (f"regs[{mi.rs}] == regs[{mi.rt}]",
                f"regs[{mi.rs}] != regs[{mi.rt}]")
    if op == "bne":
        return (f"regs[{mi.rs}] != regs[{mi.rt}]",
                f"regs[{mi.rs}] == regs[{mi.rt}]")
    if op in _BR_TAKEN:
        return (_BR_TAKEN[op].format(rs=mi.rs),
                _BR_UNTAKEN[op].format(rs=mi.rs))
    # bcc / fbcc read the condition codes
    w.uses_cc = True
    return _cc_expr(mi.pred), _cc_expr(mi.pred, invert=True)


def _chain_coupled(w, k) -> bool:
    """Is the branch at *k* part of an SFI dynamic guard chain?

    The rewriter only tags straight-line ALU guards with
    ``category="sfi"``, always immediately adjacent to the access they
    protect — but a chain-coupled branch (the branch itself, or its
    immediate predecessor, tagged ``sfi``) must never be predicted:
    splitting the chain across a guarded side exit would let a
    re-formed trace reorder the guard against its access.  Such
    branches compile to a both-way unguarded exit.
    """
    mi = w.instrs[k]
    if mi.category == "sfi":
        return True
    if k > 0:
        prev = w.instrs[k - 1]
        return prev.category == "sfi" and not _is_term_op(prev.op)
    return False


def _emit_fuel_guard(w, em, depth=0) -> None:
    em.emit("if m.instret > m.fuel:", depth)
    em.emit("    raise FuelExhausted('target simulation exceeded fuel')",
            depth)


def _emit_cond(w, em, k, slot_k):
    """Conditional branch. Returns the on-trace continuation index, or
    None when the branch compiles to a both-way exit."""
    mi = w.instrs[k]
    n = w.n
    taken_expr, untaken_expr = _branch_exprs(w, mi)
    target = mi.target
    has_slot = slot_k >= 0
    fall = k + 2 if has_slot else k + 1
    annul = bool(mi.annul) and has_slot
    if mi.category != "fused":
        _emit_charge(w, em, k)

    if _chain_coupled(w, k):
        # SFI guard-chain branch: never predicted, never promoted.
        if has_slot and not annul:
            em.emit(f"_tk = {taken_expr}")
            _emit_slot_local(w, em, slot_k, k)
            em.emit("if _tk:")
            _emit_exit_state(w, em, target, 1)
            em.emit("    m._branch_taken_penalty()")
            em.emit("    return")
            _emit_exit_state(w, em, fall)
            em.emit("return")
        elif annul:
            em.emit(f"if {taken_expr}:")
            _emit_exit_state(w, em, k, 1)
            _emit_slot_direct(w, em, slot_k, 1)
            em.emit(f"    m.pc = {target}")
            em.emit("    m._branch_taken_penalty()")
            em.emit("    return")
            _emit_exit_state(w, em, fall)
            em.emit("return")
        else:
            em.emit(f"if {taken_expr}:")
            _emit_exit_state(w, em, target, 1)
            em.emit("    m._branch_taken_penalty()")
            em.emit("    return")
            _emit_exit_state(w, em, fall)
            em.emit("return")
        return None

    if target == w.entry and 0 <= target < n:
        predict_taken = True  # loop closure
    elif fall == w.entry:
        predict_taken = False  # loop closure on the fall-through
    elif k in w.overrides:
        predict_taken = w.overrides[k]
    else:
        predict_taken = target <= k  # BTFN
    if predict_taken and not 0 <= target < n:
        predict_taken = False

    if predict_taken:
        deopt = f"m._note_exit({w.entry}, {k}, False, {fall})"
        if has_slot and not annul:
            em.emit(f"_tk = {taken_expr}")
            _emit_slot_local(w, em, slot_k, k)
            em.emit("if not _tk:")
            em.emit(f"    {deopt}")
            _emit_exit_state(w, em, fall, 1)
            em.emit("    return")
        elif annul:
            # Annulled untaken skips the slot: exit before running it.
            em.emit(f"if {untaken_expr}:")
            em.emit(f"    {deopt}")
            _emit_exit_state(w, em, fall, 1)
            em.emit("    return")
            _emit_slot_local(w, em, slot_k, k)
        else:
            em.emit(f"if {untaken_expr}:")
            em.emit(f"    {deopt}")
            _emit_exit_state(w, em, fall, 1)
            em.emit("    return")
        _emit_penalty(w, em)
        return target

    deopt = f"m._note_exit({w.entry}, {k}, True, {target})"
    if has_slot and not annul:
        em.emit(f"_tk = {taken_expr}")
        _emit_slot_local(w, em, slot_k, k)
        em.emit("if _tk:")
        em.emit(f"    {deopt}")
        _emit_exit_state(w, em, target, 1)
        em.emit("    m._branch_taken_penalty()")
        em.emit("    return")
    elif annul:
        # Annulled taken path runs the slot after the exit commit.
        em.emit(f"if {taken_expr}:")
        em.emit(f"    {deopt}")
        _emit_exit_state(w, em, k, 1)
        _emit_slot_direct(w, em, slot_k, 1)
        em.emit(f"    m.pc = {target}")
        em.emit("    m._branch_taken_penalty()")
        em.emit("    return")
    else:
        em.emit(f"if {taken_expr}:")
        em.emit(f"    {deopt}")
        _emit_exit_state(w, em, target, 1)
        em.emit("    m._branch_taken_penalty()")
        em.emit("    return")
    return fall


def _emit_term(w, em, k, slot_k):
    """One terminator. Returns the on-trace continuation index or None
    when the trace ends here."""
    mi = w.instrs[k]
    op = mi.op
    charge = mi.category != "fused"

    if op == "trap":
        # Dispatcher order: block commit -> fuel check -> pc = trap
        # index -> charge -> raise.
        _emit_exit_state(w, em, w.block_entry)
        _emit_fuel_guard(w, em)
        em.emit(f"m.pc = {k}")
        if charge:
            em.emit(f"m._charge(_instrs[{k}])")
        em.emit(f"raise VMTrap({f'module trap {mi.imm}'!r}, {mi.imm})")
        return None

    if op == "hostcall":
        # Commit + fuel check *before* the terminator charge (the
        # threaded tier charges inside the terminator closure), then
        # re-sync the charge so the host observes exact cycle state.
        _emit_exit_state(w, em, w.block_entry)
        _emit_fuel_guard(w, em)
        if charge:
            _emit_charge(w, em, k)
            em.emit(_SYNC)
            em.emit(f"m._last_issued = _instrs[{k}]")
            if w.dual:
                em.emit("m._pair_open = _po")
            else:
                em.emit("m._pair_open = True")
        em.emit(f"m.pc = {k}")
        em.emit("if m.hostcall is None:")
        em.emit("    raise VMRuntimeError('hostcall without attached "
                "host')")
        em.emit("try:")
        em.emit(f"    m.hostcall(m, {mi.imm})", 0)
        em.emit("except AccessViolation as _v:")
        # Delivery happens right here (no second commit): mark final so
        # the dispatcher re-raises a handler-less violation unchanged.
        em.emit("    _v.fault_final = True")
        em.emit(f"    m.pc = m._deliver_violation(_instrs[{k}], _v)")
        em.emit("    m._branch_taken_penalty()")
        em.emit("    return")
        em.emit(_FLUSH)
        em.emit("if m.halted:")
        em.emit(f"    m.pc = {k + 1}")
        em.emit("    return")
        # Reload cycle state the hostcall may have advanced? It cannot:
        # hosts never touch the scoreboard; locals stay authoritative.
        w.commit_reset()
        return k + 1

    if op in ("jr", "jalr"):
        if charge:
            _emit_charge(w, em, k)
        _emit_exit_state(w, em, k)
        if op == "jalr":
            em.emit(f"regs[{w.link}] = {u32(mi.imm)}")
        em.emit(f"_rt = m.map_omni_target(regs[{mi.rs}])")
        if slot_k >= 0:
            _emit_slot_direct(w, em, slot_k, 0)
        em.emit("m.pc = _rt")
        em.emit("m._branch_taken_penalty()")
        em.emit("return")
        return None

    if op in ("j", "jal"):
        if charge:
            _emit_charge(w, em, k)
        if op == "jal":
            em.emit(f"regs[{w.link}] = {u32(mi.imm)}")
        if slot_k >= 0:
            _emit_slot_local(w, em, slot_k, k)
        _emit_penalty(w, em)
        return mi.target

    return _emit_cond(w, em, k, slot_k)


# ---------------------------------------------------------------------------
# trace formation + source assembly
# ---------------------------------------------------------------------------

def _block_traceable(w, index) -> bool:
    """Every body op of the block entered at *index* (plus the delay
    slot, when the terminator has one) is inside the emitter's
    vocabulary; a slot that is itself a terminator is untraceable."""
    instrs = w.instrs
    n = w.n
    i = index
    while i < n:
        mi = instrs[i]
        if _is_term_op(mi.op):
            if w.delay and (mi.op in _COND_OPS or mi.op in _JUMP_OPS) \
                    and i + 1 < n:
                slot = instrs[i + 1]
                if _is_term_op(slot.op) or not _supported(slot):
                    return False
            return True
        if not _supported(mi):
            return False
        i += 1
    return True  # runs off the end; the trace exits there


def native_superblock_source(program, entry: int, overrides=None) -> str:
    """Generate Python source for the superblock entered at native
    index *entry* over a :class:`ThreadedNativeProgram`.

    Raises :class:`_Unsupported` when the entry block itself is outside
    the emitter's vocabulary.
    """
    w = _Trace(program, entry, overrides)
    em = w.em
    instrs = w.instrs
    n = w.n
    if not (0 <= entry < n) or not _block_traceable(w, entry):
        raise _Unsupported(f"entry block @{entry}")
    visited: set[int] = set()
    looped = False
    index = entry
    while True:
        if index in visited:
            if index == entry:
                looped = True
            else:
                em.emit(f"# rejoin @{index}: hand back to the dispatcher")
                _emit_exit_state(w, em, index)
                em.emit("return")
            break
        if len(visited) >= MAX_TRACE_BLOCKS or w.total >= MAX_TRACE_INSTRS:
            em.emit(f"# trace limit @{index}")
            _emit_exit_state(w, em, index)
            em.emit("return")
            break
        if not _block_traceable(w, index):
            em.emit(f"# untraceable block @{index}")
            _emit_exit_state(w, em, index)
            em.emit("return")
            break
        visited.add(index)
        w.start_block(index)
        em.emit(f"# block @{index}")
        i = index
        mi = None
        while i < n:
            mi = instrs[i]
            if _is_term_op(mi.op):
                break
            w.retire(mi)
            _emit_instr(w, em, i, 0, "body", -1)
            i += 1
        if i >= n:
            # Ran off the end of the code: commit, block-boundary fuel
            # check, then report the out-of-range pc like the threaded
            # dispatcher does.
            _emit_exit_state(w, em, w.block_entry)
            _emit_fuel_guard(w, em)
            em.emit(f"m.pc = {n}")
            em.emit("return")
            break
        w.retire(mi)
        slot_k = -1
        if w.delay and (mi.op in _COND_OPS or mi.op in _JUMP_OPS) \
                and i + 1 < n:
            slot_k = i + 1
        cont = _emit_term(w, em, i, slot_k)
        if cont is None:
            break
        if not 0 <= cont < n:
            em.emit(f"# static continuation out of range -> @{cont}")
            _emit_exit_state(w, em, cont)
            em.emit("return")
            break
        index = cont

    # -- assemble ---------------------------------------------------------
    cells, invalidate = cache_cells(em)
    sync_lines = []
    if w.keys:
        sync_lines.append("_rm = m._ready")
        for key, name in w.keys.items():
            sync_lines.append(f"_rm[{key!r}] = {name}")
    sync_lines.append("m.cycles = _cy")
    sync_lines.append("m._last_issue_cycle = _lic")
    if w.uses_cc:
        sync_lines.append("m.cc = _ccs")
        sync_lines.append("m.cc_unsigned = _ccu")

    out = [f"# native superblock @{entry} ({len(visited)} blocks, "
           f"{w.total} instrs{', looped' if looped else ''})",
           "def _make_superblock():"]
    if cells:
        out.append("    _mem = None")
        out.append("    _ep = 0")
        out.append(f"    {invalidate} = 0")
        names = " = ".join(f"_ld{s}" for s in em.load_sites)
        if names:
            out.append(f"    {names} = None")
        names = " = ".join(f"_sd{s}" for s in em.store_sites)
        if names:
            out.append(f"    {names} = None")
    out.append("    def _superblock(m, regs, fregs, memory):")
    body = "        "
    if cells:
        decl = ["_mem", "_ep"] + cells
        for j in range(0, len(decl), 8):
            out.append(body + "nonlocal " + ", ".join(decl[j:j + 8]))
        out.append(body + "if _mem is not memory "
                          "or _ep != memory.perm_epoch:")
        out.append(body + "    _mem = memory")
        out.append(body + "    _ep = memory.perm_epoch")
        out.append(body + f"    {invalidate} = 0")
    # Entry prologue: pull the scoreboard and cycle state into locals.
    out.append(body + "_instrs = m.instrs")
    out.append(body + "_ct = m.category_counts")
    if w.keys:
        out.append(body + "_rg = m._ready.get")
        for key, name in w.keys.items():
            out.append(body + f"{name} = _rg({key!r}, 0)")
    out.append(body + "_cy = m.cycles")
    out.append(body + "_lic = m._last_issue_cycle")
    out.append(body + "_li = m._last_issued")
    out.append(body + "_po = m._pair_open")
    if w.dual:
        out.append(body + "_du = m.spec.timing.dual_issue")
        out.append(body + "_dp = m._depends_on")
    if w.uses_cc:
        out.append(body + "_ccs = m.cc")
        out.append(body + "_ccu = m.cc_unsigned")
    pad = body
    if looped:
        out.append(body + "while True:")
        pad = body + "    "
    for line in em.lines:
        stripped = line.lstrip()
        indent = line[:len(line) - len(stripped)]
        if stripped == _SYNC:
            for s_line in sync_lines:
                out.append(pad + indent + s_line)
            continue
        if stripped == _FLUSH:
            if cells:
                out.append(pad + indent + invalidate + " = 0")
                out.append(pad + indent + "_ep = memory.perm_epoch")
            continue
        out.append(pad + line)
    if looped:
        # Backedge: commit the iteration's retire counts, honour the
        # block-level fuel cut (the watchdog zeroes m.fuel
        # asynchronously), and go round again.
        out.append(pad + f"# backedge -> @{entry}")
        if w.pending:
            out.append(pad + f"m.instret += {w.pending}")
        for cat in sorted(w.pcats):
            out.append(pad + f"_ct[{cat!r}] += {w.pcats[cat]}")
        out.append(pad + "if m.instret > m.fuel:")
        for s_line in sync_lines:
            out.append(pad + "    " + s_line)
        if w.prev[0] == "static":
            out.append(pad + f"    m._last_issued = _instrs[{w.prev[1]}]")
        elif w.prev[0] == "none":
            out.append(pad + "    m._last_issued = None")
        else:
            out.append(pad + "    m._last_issued = _li")
        if w.dual or w.po == "runtime":
            out.append(pad + "    m._pair_open = _po")
        else:
            out.append(pad + f"    m._pair_open = {w.po == 'true'}")
        out.append(pad + f"    m.pc = {entry}")
        out.append(pad + "    raise FuelExhausted("
                         "'target simulation exceeded fuel')")
        # Iteration >= 2: exits emitted before the first charge read
        # ``_li``/``_po``; refresh them to the end-of-iteration state.
        if w.prev[0] == "static":
            out.append(pad + f"_li = _instrs[{w.prev[1]}]")
        elif w.prev[0] == "none":
            out.append(pad + "_li = None")
        if not w.dual and w.po != "runtime":
            out.append(pad + f"_po = {w.po == 'true'}")
    out.append("    return _superblock")
    out.append("_superblock = _make_superblock()")
    return "\n".join(out) + "\n"


def compile_native_superblock(program, entry: int, overrides=None):
    """Compile the superblock entered at native index *entry*.

    Returns ``(source, function)`` — ``fn(m, regs, fregs, memory)``
    binds no machine state, so it is shareable across machines of the
    same translation (and cacheable under ``("jit-native", digest,
    arch, opts, entry)`` keys when compiled without *overrides*).
    Returns ``(None, None)`` when the entry block is untraceable.
    """
    try:
        source = native_superblock_source(program, entry, overrides)
    except _Unsupported:
        return None, None
    code = compile(source, f"<jit-native@{entry}>", "exec")
    namespace = dict(_EXEC_GLOBALS)
    exec(code, namespace)
    return source, namespace["_superblock"]


def _native_path_reaches(instrs, n, start, entry,
                         limit=MAX_TRACE_BLOCKS) -> bool:
    """Bounded DFS over the static native block graph: can control flow
    from block *start* get back to *entry* without an indirect jump?"""
    seen: set[int] = set()
    stack = [start]
    while stack and len(seen) < limit:
        idx = stack.pop()
        if idx == entry:
            return True
        if idx in seen or not 0 <= idx < n:
            continue
        seen.add(idx)
        i = idx
        while i < n and not _is_term_op(instrs[i].op):
            i += 1
        if i >= n:
            continue
        mi = instrs[i]
        op = mi.op
        if op in _COND_OPS:
            stack.append(mi.target)
            stack.append(i + 1)
            stack.append(i + 2)
        elif op in ("j", "jal"):
            stack.append(mi.target)
        elif op == "hostcall":
            stack.append(i + 1)
        # jr / jalr / trap: the walk stops.
    return False


# ---------------------------------------------------------------------------
# the JIT machine
# ---------------------------------------------------------------------------

class JitTargetMachine(SideExitPromotion, ThreadedTargetMachine):
    """ThreadedTargetMachine with the native superblock JIT on top.

    Cold blocks run on the inherited threaded tier while per-entry heat
    counters accumulate; entries that reach ``heat`` dispatches are
    compiled (or fetched from the shared predecode side table under the
    machine's ``jit_key``) and dispatch to their superblock from then
    on.  ``cycles``, ``instret``, register/memory state and fault
    attribution (``pc`` at the raise, ``fault_native`` on the
    violation) are bit-identical to the threaded tier; only fuel cuts
    are coarser (superblock boundaries instead of block boundaries).
    Guarded side exits that cross the heat threshold re-form the trace
    with the hot direction on trace, or anchor a new trace at the exit
    target (:class:`repro.jitcore.SideExitPromotion`).
    """

    def __init__(self, spec, instrs, memory, omni_to_native,
                 hostcall=None, fuel=100_000_000, threaded=None,
                 cache=None, jit_key=None, heat=JIT_HEAT):
        super().__init__(spec, instrs, memory, omni_to_native,
                         hostcall, fuel, threaded=threaded)
        self._jit_cache = cache
        self._jit_key = tuple(jit_key) if jit_key is not None else None
        self._jit_heat = heat
        self._heat = [0] * self._threaded.length
        self._superblocks: dict[int, object] = {}
        self._jit_sources: dict[int, str] = {}
        self._superblocks_run = 0
        self._superblocks_compiled = 0
        self._jit_deopts = 0
        self._jit_compile_ms = 0.0
        profile = None
        if cache is not None and self._jit_key is not None:
            profile_key = ("jit-profile",) + self._jit_key[1:]
            profile = cache.probe_predecoded(profile_key)
            if profile is None:
                profile = self.fresh_profile()
                cache.put_predecoded(profile_key, profile)
        self._init_promotion(profile)
        # Adopted-profile entries dispatch straight to their promoted
        # superblocks (the plain warm path would find the unpromoted
        # form under the ("jit-native", …) keys).
        self._superblocks.update(self._promoted_fns)

    def run(self, entry_native_index: int) -> int:
        compiled_before = self._superblocks_compiled
        deopts_before = self._jit_deopts
        ms_before = self._jit_compile_ms
        runs_before = self._superblocks_run
        promotions_before = self._jit_promotions
        try:
            return super().run(entry_native_index)
        finally:
            if metrics.active():
                compiled = self._superblocks_compiled - compiled_before
                if compiled:
                    metrics.count("execute.superblocks", compiled)
                deopts = self._jit_deopts - deopts_before
                if deopts:
                    metrics.count("execute.deopts", deopts)
                ms = self._jit_compile_ms - ms_before
                if ms:
                    metrics.count("execute.jit_compile_ms", ms)
                runs = self._superblocks_run - runs_before
                if runs:
                    metrics.count("execute.superblock_runs", runs)
                promotions = self._jit_promotions - promotions_before
                if promotions:
                    metrics.count("execute.jit_promotions", promotions)

    def _compile_entry(self, index):
        """Compile (or fetch from the side table) the superblock at
        *index* and install it in the dispatch map.  Entries with
        promotion overrides are profile-specialized: their compiled
        form travels with the promotion profile, not the plain
        ``("jit-native", …)`` keys."""
        overrides = self._trace_overrides.get(index)
        cache = self._jit_cache
        key = None
        if overrides:
            fn = self._promoted_fns.get(index)
            if fn is not None:
                self._superblocks[index] = fn
                return fn
        elif cache is not None and self._jit_key is not None:
            key = self._jit_key + (index,)
            fn = cache.probe_predecoded(key)
            if fn is not None:
                self._superblocks[index] = fn
                return fn
        start = time.perf_counter()
        source, fn = compile_native_superblock(self._threaded, index,
                                               overrides)
        self._jit_compile_ms += (time.perf_counter() - start) * 1000.0
        if fn is None:
            # The entry block is outside the emitter's vocabulary: pin
            # its heat so the threaded tier keeps it for good.
            self._heat[index] = -(1 << 30)
            return None
        self._superblocks_compiled += 1
        self._jit_sources[index] = source
        self._superblocks[index] = fn
        if overrides:
            self._promoted_fns[index] = fn
        elif key is not None:
            cache.put_predecoded(key, fn)
        return fn

    # -- promotion hooks (repro.jitcore.SideExitPromotion) ---------------

    def _promotion_profitable(self, entry, site, exit_loc):
        instrs = self.instrs
        n = self._threaded.length
        if not 0 <= site < n or not 0 <= exit_loc < n:
            return False
        branch = instrs[site]
        fall = site + (2 if self.spec.delay_slots else 1)
        if branch.target == entry or fall == entry:
            # Loop-closure edges are never overridden: their side exit
            # legitimately fires once per superblock entry, and
            # flipping the prediction would destroy the loop trace.
            return False
        return _native_path_reaches(instrs, n, exit_loc, entry)

    def _repromote_entry(self, entry):
        start = time.perf_counter()
        overrides = self._trace_overrides.get(entry)
        source, fn = compile_native_superblock(self._threaded, entry,
                                               overrides)
        self._jit_compile_ms += (time.perf_counter() - start) * 1000.0
        if fn is None:
            return
        self._superblocks_compiled += 1
        self._jit_sources[entry] = source
        self._superblocks[entry] = fn
        if overrides:
            self._promoted_fns[entry] = fn
        else:
            # all overrides reverted: the plain trace is current again
            self._promoted_fns.pop(entry, None)

    def _anchor_exit(self, exit_loc):
        if 0 <= exit_loc < self._threaded.length \
                and exit_loc not in self._superblocks:
            self._compile_entry(exit_loc)

    # -- dispatch ---------------------------------------------------------

    def _run(self, entry_native_index: int) -> int:
        self.pc = entry_native_index
        from repro.sfi.policy import RETURN_SENTINEL

        self.regs[self.link_reg] = RETURN_SENTINEL
        program = self._threaded
        blocks = program.blocks
        build = program.build_block
        n = program.length
        regs = self.regs
        fregs = self.fregs
        memory = self.memory
        counts = self.category_counts
        heat = self._heat
        threshold = self._jit_heat
        sb_get = self._superblocks.get
        jit_key = self._jit_key
        cache_get = (self._jit_cache.probe_predecoded
                     if self._jit_cache is not None and jit_key is not None
                     else None)
        blocks_run = 0
        fused_run = 0
        sb_run = 0
        try:
            while not self.halted:
                pc = self.pc
                if pc == 0xFFFFFFFF or pc >= n:
                    if pc == 0xFFFFFFFF:
                        break
                    raise VMRuntimeError(f"native pc out of range: {pc}")
                fn = sb_get(pc)
                if fn is None:
                    h = heat[pc] + 1
                    heat[pc] = h
                    if h >= threshold:
                        fn = self._compile_entry(pc)
                    elif h == 1 and cache_get is not None:
                        # Warm process: another machine of the same
                        # translation already compiled this entry.
                        fn = cache_get(jit_key + (pc,))
                        if fn is not None:
                            self._superblocks[pc] = fn
                if fn is not None:
                    # -- superblock tier ---------------------------------
                    sb_run += 1
                    try:
                        fn(self, regs, fregs, memory)
                    except AccessViolation as violation:
                        if getattr(violation, "fault_final", False):
                            # Delay-slot / hostcall-delivery faults: the
                            # superblock already committed (and, for
                            # hostcalls, delivered); propagate as the
                            # threaded tier would.
                            raise
                        # Body fault: state is committed, deliver like
                        # the threaded dispatcher.
                        self.pc = self._deliver_violation(
                            self.instrs[violation.fault_native], violation)
                        self._branch_taken_penalty()
                        if self.instret > self.fuel:
                            raise FuelExhausted(
                                "target simulation exceeded fuel")
                        continue
                    if self.instret > self.fuel and not self.halted:
                        raise FuelExhausted(
                            "target simulation exceeded fuel")
                    continue
                # -- threaded tier (identical to the parent's _run) ------
                block = blocks[pc]
                if block is None:
                    block = build(pc)
                (body, cats, total, term_kind, term_fn, term_mi,
                 term_end, slot, fused) = block
                blocks_run += 1
                fused_run += fused
                try:
                    for step in body:
                        step(self, regs, fregs, memory)
                except AccessViolation as violation:
                    fault = violation.fault_native
                    self._charge_fault_prefix(pc, fault)
                    redirect = self._deliver_violation(
                        self.instrs[fault], violation)
                    self.pc = redirect
                    self._branch_taken_penalty()
                    if self.instret > self.fuel:
                        raise FuelExhausted(
                            "target simulation exceeded fuel")
                    continue
                except VMRuntimeError as err:
                    fault = getattr(err, "fault_native", None)
                    if fault is not None:
                        self._charge_fault_prefix(pc, fault)
                    raise
                self.instret += total
                for category, count in cats:
                    counts[category] += count
                if self.instret > self.fuel:
                    raise FuelExhausted("target simulation exceeded fuel")
                if term_fn is None:
                    self.pc = n
                    continue
                self.pc = term_end
                try:
                    redirect = term_fn(self, regs, fregs, memory)
                except AccessViolation as violation:
                    redirect = self._deliver_violation(term_mi, violation)
                    self.pc = redirect
                    self._branch_taken_penalty()
                    continue
                if term_kind == _COND:
                    if slot is not None:
                        slot_fn, slot_mi = slot
                        if not (term_mi.annul and redirect == -2):
                            self.instret += 1
                            counts[slot_mi.category] += 1
                            slot_fn(self, regs, fregs, memory)
                        if redirect == -2:
                            self.pc = term_end + 2
                        else:
                            self.pc = redirect
                            self._branch_taken_penalty()
                    else:
                        if redirect is None or redirect == -2:
                            self.pc = term_end + 1
                        else:
                            self.pc = redirect
                            self._branch_taken_penalty()
                elif term_kind == _JUMP:
                    if slot is not None:
                        slot_fn, slot_mi = slot
                        self.instret += 1
                        counts[slot_mi.category] += 1
                        slot_fn(self, regs, fregs, memory)
                    self.pc = redirect
                    self._branch_taken_penalty()
                else:  # _HOST (trap raises out of the closure)
                    self.pc = term_end + 1
        finally:
            self._blocks_run += blocks_run
            self._fused_run += fused_run
            self._superblocks_run += sb_run
        return s32(self.exit_code if self.halted else self.regs[
            self.spec.int_map.get(1, 1)])
