"""x86 (Pentium-class) target model.

The x86 is the stress case for OmniVM's register file: 8 machine
registers must host 16 OmniVM registers.  Following the paper, the
translator maps the hot OmniVM registers onto machine registers and the
rest onto **memory-resident register slots**; Pentium-class cores execute
instructions with one memory operand at full speed, which is why the
strategy works (Table 3: x86 mobile code within 2–25% of native).

Modeling choices (see DESIGN.md):

* register indexes 0..7 are machine registers; indexes 32..47 are the
  memory-resident OmniVM register file.  Semantically they are all just
  registers; the **timing model** charges extra when an instruction
  touches more than one memory-resident slot (the "one free memory
  operand" Pentium rule), and the **translator** inserts the extra moves
  two-operand x86 code needs (``twoop`` category);
* flags + ``jcc`` branch model (``cmp`` sets flags);
* 32-bit immediates everywhere — x86's big win: no ``ldi`` expansion;
* FP is a flat 8-register file with Pentium FP latencies (the x87 stack
  is not modeled; the FP-pipeline-scheduling benefit is);
* dual issue models the U/V pairing rules loosely: two simple ALU ops
  pair; anything touching memory-resident slots or FP pairs less.
"""

from __future__ import annotations

from repro.targets.base import MInstr, TargetSpec, Timing

# Machine registers.
EAX, ECX, EDX, EBX, ESP, EBP, ESI, EDI = range(8)

#: Memory-resident OmniVM register slots start here.
SLOT_BASE = 32

# OmniVM register mapping: the return/argument registers and the two
# codegen scratch registers are the hottest; they get machine registers.
INT_MAP = {
    0: EDI,
    1: EAX,
    2: ECX,
    3: EDX,
    4: EBX,
    5: ESI,          # OmniVM scratch r5
    15: ESP,         # sp
}
for omni in (6, 7, 8, 9, 10, 11, 12, 13, 14):
    INT_MAP[omni] = SLOT_BASE + omni

#: EBP is the dedicated SFI/address scratch register.
SFI_SCRATCH = EBP

FP_MAP = {i: 8 + (i % 8) if i >= 8 else i for i in range(16)}
# FP registers: OmniVM f0..f15 -> model f0..f15 directly (flat file).
FP_MAP = {i: i for i in range(16)}

_SIMPLE_PAIRABLE = frozenset(
    "add addi sub and andi or ori xor xori mov li slli srli srai "
    "sll srl sra slt sltu slti sltiu lw sw lb lbu lh lhu sb sh "
    "lwx sbx shx swx lbx lbux lhx lhux cmp cmpi".split()
)


def _touches_slots(instr: MInstr) -> bool:
    for kind, index in instr.cached_reads():
        if kind == "r" and index >= SLOT_BASE:
            return True
    for kind, index in instr.cached_writes():
        if kind == "r" and index >= SLOT_BASE:
            return True
    return False


def _dual_issue(first: MInstr, second: MInstr) -> bool:
    """Loose U/V pairing: two simple ops pair unless both touch the
    memory-resident register file."""
    if first.op not in _SIMPLE_PAIRABLE or second.op not in _SIMPLE_PAIRABLE:
        return False
    if _touches_slots(first) and _touches_slots(second):
        return False
    if first.is_load() and second.is_load():
        return False  # single load port
    return True


def _timing() -> Timing:
    return Timing(
        name="pentium",
        load_latency=1,
        mul_latency=10,
        div_latency=40,
        fp_add_latency=3,
        fp_mul_latency=3,
        fp_div_latency=39,
        cmp_latency=1,
        taken_branch_penalty=2,
        has_delay_slot=False,
        dual_issue=_dual_issue,
        memory_reg_threshold=SLOT_BASE,
        memory_reg_cost=1,
    )


#: Dominant dynamic (op, op) pairs in x86 translations of the SPEC
#: workloads (register pressure makes mov-heavy pairs dominate).
FUSION_PAIRS = (
    ("mov", "mov"), ("lw", "mov"), ("mov", "li"), ("slli", "mov"),
    ("cmpi", "bcc"), ("addi", "mov"), ("mov", "slli"), ("mov", "addi"),
    ("cmp", "bcc"), ("andi", "mov"), ("mov", "andi"), ("lw", "lw"),
    ("sw", "sw"), ("sw", "mov"), ("mov", "sw"), ("addi", "ori"),
    ("lw", "cmpi"), ("mov", "j"), ("fcmp", "fbcc"), ("fcmps", "fbcc"),
    ("ori", "mov"), ("mov", "ori"), ("li", "li"), ("li", "mov"),
    ("addi", "addi"), ("lw", "addi"), ("addi", "lw"), ("lw", "sw"),
    ("sw", "lw"), ("addi", "sw"), ("mov", "cmp"), ("lw", "cmp"),
    ("slli", "add"), ("add", "add"), ("li", "cmp"), ("andi", "cmpi"),
)


def spec() -> TargetSpec:
    return TargetSpec(
        name="x86",
        num_regs=8,
        num_fregs=8,
        int_map=dict(INT_MAP),
        fp_map=dict(FP_MAP),
        reserved={
            "at": SFI_SCRATCH,
            "sfi_mask": -1,   # x86 masks with 32-bit immediates
            "sfi_base": -1,
            "sfi_code_base": -1,
            "gp": -1,
            "sp": ESP,
            "ra": SLOT_BASE + 14,
        },
        timing=_timing(),
        delay_slots=False,
        has_indexed_mem=True,
        imm_bits=32,
        real_regs=8,
        fusion_pairs=FUSION_PAIRS,
    )
