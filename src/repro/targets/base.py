"""Shared machinery for the four simulated target architectures.

Each target (MIPS R4400, SPARC, PowerPC 601, x86/Pentium) is modeled as:

* a **TargetSpec** — register file description, OmniVM→target register
  mapping, dedicated SFI registers, timing parameters (latencies, issue
  rules, branch penalties, delay slots);
* a **translator** (:mod:`repro.translators`) that macro-expands OmniVM
  instructions into target instructions drawn from a *union vocabulary*
  defined here;
* one generic **executor** (:class:`TargetMachine`) that implements the
  union vocabulary functionally and charges cycles according to the
  target's timing model.

The union-vocabulary design means semantics are written once and
differentially testable against the OmniVM reference interpreter, while
each target still has its own instruction selection (which is where the
paper's Figure 1 expansion categories come from) and its own timing
behaviour (which is where the Tables 3–5 cycle ratios come from).

Simplifications (documented in DESIGN.md): all target instructions occupy
one slot (no variable-length x86 encoding); x86's memory-resident OmniVM
registers are modeled as extra register-array entries whose access cost
appears in the timing model, not the semantics; caches are not modeled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro import metrics
from repro.errors import (
    AccessViolation,
    FuelExhausted,
    SandboxViolation,
    VMRuntimeError,
    VMTrap,
)
from repro.omnivm import semantics
from repro.omnivm.memory import Memory
from repro.utils.bits import (
    add32,
    fits_signed,
    mul32,
    round_f32,
    s32,
    sll32,
    sra32,
    srl32,
    sub32,
    u32,
)

#: Expansion categories, exactly the Figure 1 legend plus bookkeeping ones.
#: ``fused`` marks instructions a cc-profile peephole merged into a
#: neighbour: they execute functionally at zero issue cost.  ``pad``
#: marks bundle-alignment nops emitted under a padded sandbox policy
#: (``SandboxPolicy.pad_align``) so the ablation harness can attribute
#: their static and dynamic cost.
CATEGORIES = ("base", "addr", "cmp", "ldi", "bnop", "sfi", "twoop",
              "sched", "fused", "pad")


@dataclass
class MInstr:
    """One target-machine instruction (union vocabulary).

    ``target`` is a native instruction *index* for direct control flow.
    ``omni_addr`` records which OmniVM instruction this expanded from.
    ``category`` attributes the instruction to a Figure-1 expansion
    category (``base`` = the primary instruction of the expansion).
    """

    op: str
    rd: int = -1
    rs: int = -1
    rt: int = -1
    fd: int = -1
    fs: int = -1
    ft: int = -1
    imm: int = 0
    target: int = -1
    pred: str = ""       # condition-branch / set predicate
    annul: bool = False  # SPARC annulled branch
    omni_addr: int = 0
    category: str = "base"
    # Cached operand sets / latency / issue class (computed on first use;
    # invariant afterwards — the executor charges millions of dynamic
    # instances of each instruction object).
    creads: tuple | None = None
    cwrites: tuple | None = None
    clat: int = -1
    cclass: str = ""

    def cached_reads(self) -> tuple:
        if self.creads is None:
            self.creads = tuple(self.reg_reads())
        return self.creads

    def cached_writes(self) -> tuple:
        if self.cwrites is None:
            self.cwrites = tuple(self.reg_writes())
        return self.cwrites

    def __str__(self) -> str:
        fields = []
        for name in ("rd", "rs", "rt"):
            value = getattr(self, name)
            if value >= 0:
                fields.append(f"{name}=r{value}")
        for name in ("fd", "fs", "ft"):
            value = getattr(self, name)
            if value >= 0:
                fields.append(f"{name}=f{value}")
        if self.imm:
            fields.append(f"imm={self.imm:#x}")
        if self.target >= 0:
            fields.append(f"->{self.target}")
        if self.pred:
            fields.append(self.pred)
        tag = f" [{self.category}]" if self.category != "base" else ""
        return f"{self.op} {' '.join(fields)}{tag}"

    # Register read/write sets for scheduling and timing.

    def reg_reads(self) -> list[tuple[str, int]]:
        reads: list[tuple[str, int]] = []
        if self.op in _WRITES_NO_RS:
            pass
        else:
            if self.rs >= 0:
                reads.append(("r", self.rs))
            if self.rt >= 0:
                reads.append(("r", self.rt))
        if self.op in _STORE_OPS and self.rd >= 0:
            reads.append(("r", self.rd))
        if self.fs >= 0:
            reads.append(("f", self.fs))
        if self.ft >= 0:
            reads.append(("f", self.ft))
        if self.op in _TWO_OPERAND_READS_DEST and self.rd >= 0:
            reads.append(("r", self.rd))
        if self.op in ("fcmp", "fcmps"):
            pass
        if self.op in _CC_READERS:
            reads.append(("cc", 0))
        return reads

    def reg_writes(self) -> list[tuple[str, int]]:
        writes: list[tuple[str, int]] = []
        if self.op in _STORE_OPS or self.op in _BRANCH_OPS or self.op in (
            "j", "jr", "trap", "nop", "hostcall_void",
        ):
            pass
        elif self.op in ("jal", "jalr", "hostcall"):
            pass  # handled by the executor (link register is per-target)
        elif self.op.startswith(("lf", "f", "cvtd", "cvts")) and self.fd >= 0:
            writes.append(("f", self.fd))
        elif self.rd >= 0:
            writes.append(("r", self.rd))
        if self.fd >= 0 and ("f", self.fd) not in writes and self.op not in _STORE_OPS:
            writes.append(("f", self.fd))
        if self.op in _CC_WRITERS:
            writes.append(("cc", 0))
        return writes

    def is_branch(self) -> bool:
        return self.op in _BRANCH_OPS or self.op in ("j", "jal", "jr", "jalr")

    def is_load(self) -> bool:
        return self.op in _LOAD_OPS

    def is_store(self) -> bool:
        return self.op in _STORE_OPS


_LOAD_OPS = frozenset(
    "lb lbu lh lhu lw lbx lbux lhx lhux lwx lfs lfd lfsx lfdx".split()
)
_STORE_OPS = frozenset("sb sh sw sbx shx swx sfs sfd sfsx sfdx".split())
_BRANCH_OPS = frozenset(
    "beq bne bltz blez bgtz bgez bcc fbcc".split()
)
_CC_WRITERS = frozenset("cmp cmpi cmplu cmpliu subcc fcmp fcmps".split())
_CC_READERS = frozenset("bcc fbcc setcc".split())
_WRITES_NO_RS = frozenset(("li", "lui"))
#: x86-style two-operand ops that read their destination.
_TWO_OPERAND_READS_DEST = frozenset(())


@dataclass
class Timing:
    """First-order timing parameters for one target."""

    name: str = "generic"
    #: result latency by op class: cycles before a consumer may issue.
    load_latency: int = 2
    mul_latency: int = 4
    div_latency: int = 20
    fp_add_latency: int = 3
    fp_mul_latency: int = 4
    fp_div_latency: int = 18
    cmp_latency: int = 1
    #: extra cycles when a taken branch redirects the pipeline
    taken_branch_penalty: int = 1
    has_delay_slot: bool = False
    #: dual issue: 0 = scalar; otherwise a callable deciding if two
    #: consecutive instructions may issue in the same cycle.
    dual_issue: Callable[[MInstr, MInstr], bool] | None = None
    #: additional issue cost for memory-resident register operands (x86)
    memory_reg_threshold: int = 10_000  # register index >= this is memory
    memory_reg_cost: int = 0

    def result_latency(self, instr: MInstr) -> int:
        op = instr.op
        if instr.is_load():
            return self.load_latency
        if op in ("mul", "muli"):
            return self.mul_latency
        if op in ("div", "divu", "rem", "remu"):
            return self.div_latency
        if op in ("fadds", "faddd", "fsubs", "fsubd", "fnegs", "fnegd",
                  "fabss", "fabsd", "cvtds", "cvtsd", "cvtdw", "cvtsw",
                  "cvtdwu", "cvtswu", "cvtwd", "cvtws", "cvtwud", "cvtwus"):
            return self.fp_add_latency
        if op in ("fmuls", "fmuld"):
            return self.fp_mul_latency
        if op in ("fdivs", "fdivd"):
            return self.fp_div_latency
        if op in _CC_WRITERS:
            return self.cmp_latency
        return 1


@dataclass
class TargetSpec:
    """Static description of a simulated target architecture."""

    name: str
    num_regs: int
    num_fregs: int
    #: OmniVM integer register -> target register
    int_map: dict[int, int]
    #: OmniVM FP register -> target FP register
    fp_map: dict[int, int]
    #: dedicated registers reserved by the runtime (SFI masks/bases, gp,
    #: assembler scratch) — documented per target
    reserved: dict[str, int]
    timing: Timing
    #: does this target have load/branch delay slots (MIPS, SPARC)?
    delay_slots: bool = False
    #: does this target have an indexed (reg+reg) addressing mode?
    has_indexed_mem: bool = False
    #: immediate width for ALU/compare/memory-offset immediates
    imm_bits: int = 16
    #: x86: register indexes >= real_regs live in memory
    real_regs: int = 64
    #: (op, op) pairs the threaded engine may fuse into superinstructions
    #: for this target (see :mod:`repro.targets.threaded`); chosen from
    #: the dominant dynamic pairs the target's translator emits.
    fusion_pairs: tuple = ()

    def fits_imm(self, value: int) -> bool:
        return fits_signed(value, self.imm_bits)


class HaltExecution(Exception):
    """Internal: raised by the exit hostcall to stop the machine."""


class TargetMachine:
    """Generic in-order executor + cycle model over the union vocabulary."""

    def __init__(
        self,
        spec: TargetSpec,
        instrs: list[MInstr],
        memory: Memory,
        omni_to_native: dict[int, int],
        hostcall: Callable[["TargetMachine", int], None] | None = None,
        fuel: int = 100_000_000,
    ):
        self.spec = spec
        self.instrs = instrs
        self.memory = memory
        self.omni_to_native = omni_to_native
        self.hostcall = hostcall
        self.fuel = fuel
        self.regs = [0] * max(spec.num_regs, 72)
        self.fregs = [0.0] * max(spec.num_fregs, 40)
        self.cc = 0  # condition state: result of last cmp (signed tuple)
        self.cc_unsigned = 0
        self.pc = 0
        self.link_reg = spec.reserved.get("ra", 31)
        self.handler_omni = 0  # module access-violation handler address
        self.halted = False
        self.exit_code = 0
        self.instret = 0
        self.cycles = 0
        #: dynamic instruction counts per expansion category (Figure 1)
        self.category_counts: dict[str, int] = {c: 0 for c in CATEGORIES}
        # timing state
        self._ready: dict[tuple[str, int], int] = {}
        self._last_issued: MInstr | None = None
        self._last_issue_cycle = -1
        self._pair_open = False

    # -- cycle accounting -----------------------------------------------------

    def _charge(self, instr: MInstr) -> None:
        timing = self.spec.timing
        ready_map = self._ready
        reads = instr.creads if instr.creads is not None else instr.cached_reads()
        writes = instr.cwrites if instr.cwrites is not None else instr.cached_writes()
        stall_until = 0
        for key in reads:
            ready = ready_map.get(key, 0)
            if ready > stall_until:
                stall_until = ready
        # Dual issue: the previous instruction's issue slot may have room
        # for one partner.  A pair fills the slot (no triple issue).
        paired = (
            timing.dual_issue is not None
            and self._pair_open
            and self._last_issued is not None
            and stall_until <= self._last_issue_cycle
            and timing.dual_issue(self._last_issued, instr)
            and not self._depends_on(instr, self._last_issued)
        )
        if paired:
            issue_cycle = self._last_issue_cycle
            self._pair_open = False
        else:
            issue_cycle = max(stall_until, self._last_issue_cycle + 1)
            self._pair_open = True
        extra = 0
        if timing.memory_reg_cost:
            threshold = timing.memory_reg_threshold
            memory_operands = 0
            for kind, index in reads:
                if kind == "r" and index >= threshold:
                    memory_operands += 1
            for kind, index in writes:
                if kind == "r" and index >= threshold:
                    memory_operands += 1
            if memory_operands > 1:
                extra += timing.memory_reg_cost * (memory_operands - 1)
        issue_cycle += extra
        if issue_cycle > self.cycles:
            self.cycles = issue_cycle
        latency = instr.clat
        if latency < 0:
            latency = instr.clat = timing.result_latency(instr)
        for key in writes:
            ready_map[key] = issue_cycle + latency
        self._last_issued = instr
        self._last_issue_cycle = issue_cycle

    def _depends_on(self, instr: MInstr, prev: MInstr) -> bool:
        written = prev.cached_writes()
        if not written:
            return False
        reads = instr.cached_reads()
        return any(read in written for read in reads)

    def _branch_taken_penalty(self) -> None:
        self.cycles += self.spec.timing.taken_branch_penalty
        self._last_issue_cycle = self.cycles
        self._last_issued = None
        self._pair_open = False

    # -- host interface ----------------------------------------------------------

    def halt(self, code: int) -> None:
        self.halted = True
        self.exit_code = code

    # -- main loop ------------------------------------------------------------------

    def run(self, entry_native_index: int) -> int:
        start_instret = self.instret
        start_cycles = self.cycles
        start_sfi = self.category_counts.get("sfi", 0)
        try:
            return self._run(entry_native_index)
        finally:
            if metrics.active():
                metrics.count("execute.native.instret",
                              self.instret - start_instret)
                metrics.count("execute.native.cycles",
                              self.cycles - start_cycles)
                sfi = self.category_counts.get("sfi", 0) - start_sfi
                if sfi:
                    metrics.count("execute.sfi.dynamic", sfi)

    def _run(self, entry_native_index: int) -> int:
        self.pc = entry_native_index
        # The return sentinel is an in-segment, aligned module address so
        # it survives SFI masking; reaching it halts the machine.
        from repro.sfi.policy import RETURN_SENTINEL

        self.regs[self.link_reg] = RETURN_SENTINEL
        instrs = self.instrs
        while not self.halted:
            if self.pc == 0xFFFFFFFF or self.pc >= len(instrs):
                if self.pc == 0xFFFFFFFF:
                    break
                raise VMRuntimeError(f"native pc out of range: {self.pc}")
            instr = instrs[self.pc]
            self.instret += 1
            if self.instret > self.fuel:
                raise FuelExhausted("target simulation exceeded fuel")
            self.category_counts[instr.category] += 1
            if instr.category != "fused":
                self._charge(instr)
            next_pc = self.pc + 1
            try:
                redirect = self.execute(instr)
            except AccessViolation as violation:
                redirect = self._deliver_violation(instr, violation)
            if redirect is not None:
                if self.spec.delay_slots and instr.is_branch():
                    # Execute the delay slot instruction, then redirect.
                    slot = instrs[self.pc + 1]
                    if not (instr.annul and redirect == -2):
                        self.instret += 1
                        self.category_counts[slot.category] += 1
                        if slot.category != "fused":
                            self._charge(slot)
                        self.execute(slot)
                    if redirect == -2:  # not-taken branch with delay slot
                        next_pc = self.pc + 2
                    else:
                        next_pc = redirect
                        self._branch_taken_penalty()
                else:
                    if redirect == -2:
                        next_pc = self.pc + 1
                    else:
                        next_pc = redirect
                        self._branch_taken_penalty()
            elif self.spec.delay_slots and instr.is_branch():
                # Untaken branch on a delay-slot machine: the slot runs.
                slot = instrs[self.pc + 1]
                if not instr.annul:
                    self.instret += 1
                    self.category_counts[slot.category] += 1
                    if slot.category != "fused":
                        self._charge(slot)
                    self.execute(slot)
                next_pc = self.pc + 2
            self.pc = next_pc
        return s32(self.exit_code if self.halted else self.regs[
            self.spec.int_map.get(1, 1)])

    def _deliver_violation(self, instr: MInstr, violation: AccessViolation) -> int:
        """The virtual exception model on a translated target: the
        runtime's fault handler reflects the violation to the module's
        registered handler with (cause, address, module pc) in the
        argument registers; without a handler it propagates to the host."""
        if not self.handler_omni:
            raise violation
        cause = {"load": 1, "store": 2, "execute": 3}.get(violation.kind, 2)
        arg_regs = self.spec.int_map
        self.regs[arg_regs[1]] = cause
        self.regs[arg_regs[2]] = u32(violation.address)
        self.regs[arg_regs[3]] = u32(instr.omni_addr)
        return self.map_omni_target(self.handler_omni)

    # -- resolving indirect targets ---------------------------------------------------

    def map_omni_target(self, omni_addr: int) -> int:
        from repro.sfi.policy import RETURN_SENTINEL

        omni_addr = u32(omni_addr)
        if omni_addr in (0xFFFFFFFF, RETURN_SENTINEL):
            return 0xFFFFFFFF
        native = self.omni_to_native.get(omni_addr)
        if native is None:
            raise SandboxViolation(
                f"indirect control transfer to unmapped module address "
                f"{omni_addr:#010x}"
            )
        return native

    # -- semantics ------------------------------------------------------------------

    def execute(self, instr: MInstr) -> int | None:
        """Execute one instruction; return the new pc for taken control
        transfers, -2 for explicitly-untaken branches on delay-slot
        machines, or None."""
        op = instr.op
        regs = self.regs
        fregs = self.fregs
        imm = instr.imm
        if op == "add":
            regs[instr.rd] = add32(regs[instr.rs], regs[instr.rt])
        elif op == "addi":
            regs[instr.rd] = add32(regs[instr.rs], u32(imm))
        elif op == "sub":
            regs[instr.rd] = sub32(regs[instr.rs], regs[instr.rt])
        elif op == "mul":
            regs[instr.rd] = mul32(regs[instr.rs], regs[instr.rt])
        elif op in ("div", "divu", "rem", "remu"):
            regs[instr.rd] = semantics.int_divide(
                op, regs[instr.rs], regs[instr.rt])
        elif op == "and":
            regs[instr.rd] = regs[instr.rs] & regs[instr.rt]
        elif op == "andi":
            regs[instr.rd] = regs[instr.rs] & u32(imm)
        elif op == "or":
            regs[instr.rd] = regs[instr.rs] | regs[instr.rt]
        elif op == "ori":
            regs[instr.rd] = regs[instr.rs] | u32(imm)
        elif op == "xor":
            regs[instr.rd] = regs[instr.rs] ^ regs[instr.rt]
        elif op == "xori":
            regs[instr.rd] = regs[instr.rs] ^ u32(imm)
        elif op == "nor":
            regs[instr.rd] = u32(~(regs[instr.rs] | regs[instr.rt]))
        elif op == "sll":
            regs[instr.rd] = sll32(regs[instr.rs], regs[instr.rt])
        elif op == "slli":
            regs[instr.rd] = sll32(regs[instr.rs], imm)
        elif op == "srl":
            regs[instr.rd] = srl32(regs[instr.rs], regs[instr.rt])
        elif op == "srli":
            regs[instr.rd] = srl32(regs[instr.rs], imm)
        elif op == "sra":
            regs[instr.rd] = sra32(regs[instr.rs], regs[instr.rt])
        elif op == "srai":
            regs[instr.rd] = sra32(regs[instr.rs], imm)
        elif op == "li":
            regs[instr.rd] = u32(imm)
        elif op == "lui":
            regs[instr.rd] = u32(imm) << 16
        elif op == "mov":
            regs[instr.rd] = regs[instr.rs]
        elif op == "slt":
            regs[instr.rd] = 1 if s32(regs[instr.rs]) < s32(regs[instr.rt]) else 0
        elif op == "sltu":
            regs[instr.rd] = 1 if regs[instr.rs] < regs[instr.rt] else 0
        elif op == "slti":
            regs[instr.rd] = 1 if s32(regs[instr.rs]) < s32(imm) else 0
        elif op == "sltiu":
            regs[instr.rd] = 1 if regs[instr.rs] < u32(imm) else 0
        elif op in ("sext8", "sext16", "zext8", "zext16"):
            regs[instr.rd] = semantics.extend(op, regs[instr.rs])
        # -- memory ---------------------------------------------------------
        elif op in ("lb", "lbu", "lh", "lhu", "lw"):
            address = add32(regs[instr.rs], u32(imm))
            size, signed = {"lb": (1, True), "lbu": (1, False),
                            "lh": (2, True), "lhu": (2, False),
                            "lw": (4, False)}[op]
            regs[instr.rd] = u32(self.memory.load(address, size, signed))
        elif op in ("lbx", "lbux", "lhx", "lhux", "lwx"):
            address = add32(regs[instr.rs], regs[instr.rt])
            size, signed = {"lbx": (1, True), "lbux": (1, False),
                            "lhx": (2, True), "lhux": (2, False),
                            "lwx": (4, False)}[op]
            regs[instr.rd] = u32(self.memory.load(address, size, signed))
        elif op in ("sb", "sh", "sw"):
            address = add32(regs[instr.rs], u32(imm))
            size = {"sb": 1, "sh": 2, "sw": 4}[op]
            self.memory.store(address, size, regs[instr.rt])
        elif op in ("sbx", "shx", "swx"):
            address = add32(regs[instr.rs], regs[instr.rd])
            size = {"sbx": 1, "shx": 2, "swx": 4}[op]
            self.memory.store(address, size, regs[instr.rt])
        elif op == "lfs":
            fregs[instr.fd] = self.memory.load_f32(
                add32(regs[instr.rs], u32(imm)))
        elif op == "lfd":
            fregs[instr.fd] = self.memory.load_f64(
                add32(regs[instr.rs], u32(imm)))
        elif op == "lfsx":
            fregs[instr.fd] = self.memory.load_f32(
                add32(regs[instr.rs], regs[instr.rt]))
        elif op == "lfdx":
            fregs[instr.fd] = self.memory.load_f64(
                add32(regs[instr.rs], regs[instr.rt]))
        elif op == "sfs":
            self.memory.store_f32(add32(regs[instr.rs], u32(imm)),
                                  fregs[instr.ft])
        elif op == "sfd":
            self.memory.store_f64(add32(regs[instr.rs], u32(imm)),
                                  fregs[instr.ft])
        elif op == "sfsx":
            self.memory.store_f32(add32(regs[instr.rs], regs[instr.rd]),
                                  fregs[instr.ft])
        elif op == "sfdx":
            self.memory.store_f64(add32(regs[instr.rs], regs[instr.rd]),
                                  fregs[instr.ft])
        # -- FP arithmetic -----------------------------------------------------
        elif op in ("fadds", "fsubs", "fmuls", "fdivs",
                    "faddd", "fsubd", "fmuld", "fdivd"):
            result = semantics.fp_binop(
                op[:-1], fregs[instr.fs], fregs[instr.ft])
            fregs[instr.fd] = round_f32(result) if op.endswith("s") else result
        elif op in ("fnegs", "fnegd", "fabss", "fabsd", "fmovs", "fmovd"):
            result = semantics.fp_unop(op[:-1], fregs[instr.fs])
            fregs[instr.fd] = round_f32(result) if op.endswith("s") else result
        elif op in ("fceqs", "fclts", "fcles", "fceqd", "fcltd", "fcled"):
            a, b = fregs[instr.fs], fregs[instr.ft]
            pred = {"fceq": a == b, "fclt": a < b, "fcle": a <= b}[op[:-1]]
            regs[instr.rd] = 1 if pred else 0
        elif op in ("fcmp", "fcmps"):
            a, b = fregs[instr.fs], fregs[instr.ft]
            self.cc = (a > b) - (a < b)
            self.cc_unsigned = self.cc
        # -- conversions --------------------------------------------------------
        elif op == "cvtdw":
            fregs[instr.fd] = float(s32(regs[instr.rs]))
        elif op == "cvtsw":
            fregs[instr.fd] = round_f32(float(s32(regs[instr.rs])))
        elif op == "cvtdwu":
            fregs[instr.fd] = float(regs[instr.rs])
        elif op == "cvtswu":
            fregs[instr.fd] = round_f32(float(regs[instr.rs]))
        elif op in ("cvtwd", "cvtws"):
            regs[instr.rd] = semantics.f_to_i32(fregs[instr.fs])
        elif op in ("cvtwud", "cvtwus"):
            regs[instr.rd] = semantics.f_to_u32(fregs[instr.fs])
        elif op == "cvtds":
            fregs[instr.fd] = fregs[instr.fs]
        elif op == "cvtsd":
            fregs[instr.fd] = round_f32(fregs[instr.fs])
        # -- condition codes ------------------------------------------------------
        elif op in ("cmp", "subcc"):
            a, b = regs[instr.rs], regs[instr.rt]
            self.cc = (s32(a) > s32(b)) - (s32(a) < s32(b))
            self.cc_unsigned = (a > b) - (a < b)
        elif op == "cmpi":
            a = regs[instr.rs]
            self.cc = (s32(a) > s32(imm)) - (s32(a) < s32(imm))
            self.cc_unsigned = (a > u32(imm)) - (a < u32(imm))
        elif op == "bcc":
            taken = self._cc_predicate(instr.pred)
            return instr.target if taken else (-2 if self.spec.delay_slots
                                               else None)
        elif op == "fbcc":
            taken = self._cc_predicate(instr.pred)
            return instr.target if taken else (-2 if self.spec.delay_slots
                                               else None)
        elif op == "setcc":
            regs[instr.rd] = 1 if self._cc_predicate(instr.pred) else 0
        # -- branches (MIPS-style register forms) -----------------------------------
        elif op == "beq":
            if regs[instr.rs] == regs[instr.rt]:
                return instr.target
            return -2 if self.spec.delay_slots else None
        elif op == "bne":
            if regs[instr.rs] != regs[instr.rt]:
                return instr.target
            return -2 if self.spec.delay_slots else None
        elif op in ("bltz", "blez", "bgtz", "bgez"):
            value = s32(regs[instr.rs])
            taken = {"bltz": value < 0, "blez": value <= 0,
                     "bgtz": value > 0, "bgez": value >= 0}[op]
            if taken:
                return instr.target
            return -2 if self.spec.delay_slots else None
        # -- jumps -------------------------------------------------------------------
        elif op == "j":
            return instr.target
        elif op == "jal":
            # imm holds the OmniVM return address (module-space pointer).
            regs[self.link_reg] = u32(imm)
            return instr.target
        elif op == "jr":
            return self.map_omni_target(regs[instr.rs])
        elif op == "jalr":
            regs[self.link_reg] = u32(imm)
            return self.map_omni_target(regs[instr.rs])
        elif op == "hostcall":
            if self.hostcall is None:
                raise VMRuntimeError("hostcall without attached host")
            self.hostcall(self, imm)
        elif op == "nop":
            pass
        elif op == "trap":
            raise VMTrap(f"module trap {imm}", imm)
        elif op == "sethnd":
            # The runtime catches the host OS fault and reflects it to
            # this module-space handler (the virtual exception model).
            self.handler_omni = regs[instr.rs]
        else:  # pragma: no cover
            raise VMRuntimeError(f"target op {op!r} not implemented")
        return None

    def _cc_predicate(self, pred: str) -> bool:
        signed = self.cc
        unsigned = self.cc_unsigned
        table = {
            "eq": signed == 0, "ne": signed != 0,
            "lt": signed < 0, "le": signed <= 0,
            "gt": signed > 0, "ge": signed >= 0,
            "ltu": unsigned < 0, "leu": unsigned <= 0,
            "gtu": unsigned > 0, "geu": unsigned >= 0,
        }
        return table[pred]
