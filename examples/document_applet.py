"""Executable document content: a "browser" runs an untrusted applet.

The paper's headline application is executable content for electronic
documents.  The host here is a document viewer exposing a tiny graphics
API (``gfx_draw``/``gfx_clear``); the document carries an OmniVM module
that renders a plot into the viewer's canvas.

Also demonstrates the **virtual exception model**: the applet registers
an access-violation handler with ``sethnd``, pokes an unmapped address,
and recovers gracefully inside its own address space — the host never
sees the fault.

Run:  python examples/document_applet.py
"""

from repro.compiler import CompileOptions, compile_to_object
from repro.omnivm.linker import link
from repro.runtime import hostapi
from repro.runtime.host import Host
from repro.runtime.loader import load_for_interpretation

APPLET = r"""
/* Render a sine-ish wave into the 60x16 canvas, then survive a fault. */

int recovered;

void on_violation(int cause, uint addr, uint pc) {
    /* The virtual exception model delivered the fault here.  Record it
       and continue at a safe point by returning a value via globals. */
    recovered = recovered + 1;
    emit_str("handled access violation, cause=");
    emit_int(cause);
    emit_char('\n');
    finish();
}

void finish(void) {
    emit_str("applet done, recovered=");
    emit_int(recovered);
    emit_char('\n');
    exit(0);
}

int half_wave(int x) {
    /* triangle-ish wave without floating point */
    int m = x % 28;
    if (m > 14) m = 28 - m;
    return m;
}

int main() {
    gfx_clear();
    int x;
    for (x = 0; x < 60; x++) {
        int y = 1 + half_wave(x);
        gfx_draw(x, y, 0x3366FF);
        if (y > 2) gfx_draw(x, y - 1, 0x99BBFF);
    }
    emit_str("wave drawn\n");

    /* Register the handler, then deliberately fault. */
    recovered = 0;
    sethandler(on_violation);
    int *wild = (int *) 0x0F000000;   /* unmapped: below the code segment */
    int v = *wild;                    /* faults; handler takes over */
    emit_int(v);                      /* never reached */
    return 1;
}
"""


def main() -> None:
    print("== document viewer loads the applet ==")
    obj = compile_to_object(APPLET, CompileOptions(module_name="applet"))
    program = link([obj], name="applet")
    host = Host(exports=set(hostapi.DEFAULT_EXPORTS) | {"gfx_draw", "gfx_clear"})
    loaded = load_for_interpretation(program, host=host)
    code = loaded.run()
    print(f"   applet exit={code}")
    print(f"   applet says: {host.output_text()!r}")

    print("== the canvas the applet rendered ==")
    if host.canvas:
        xs = [x for x, _ in host.canvas]
        ys = [y for _, y in host.canvas]
        for y in range(max(ys), min(ys) - 1, -1):
            row = "".join(
                "#" if (x, y) in host.canvas else " "
                for x in range(min(xs), max(xs) + 1)
            )
            print(f"   |{row}|")


if __name__ == "__main__":
    main()
