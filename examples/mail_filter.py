"""Function shipping: an e-mail server runs an untrusted filter module.

The paper's motivating example: "an e-mail client can ship a
mail-filtering function to a server to reduce server bandwidth
requirements."  Here the *server* is the host application; the client
ships a MiniC module that scores each message and forwards only the
interesting ones through the host's ``host_send`` export.

Demonstrated safety properties:

* the filter reads messages only through the ``host_recv`` export (host
  pointers never enter the module's address space);
* the host decides which API entries the module may call — a second,
  greedy module that tries to call the graphics API is rejected;
* the filter runs translated with SFI on the server's "processor"
  (MIPS here), so even a buggy filter cannot corrupt the server.

Run:  python examples/mail_filter.py
"""

from repro.compiler import CompileOptions, compile_to_object
from repro.errors import HostCallError
from repro.omnivm.linker import link
from repro.runtime import hostapi
from repro.runtime.host import Host
from repro.runtime.native_loader import load_for_target
from repro.native.profiles import MOBILE_SFI

FILTER = r"""
/* Score a message: +2 per "urgent", +1 per "omniware", -3 per "spam".
   Forward messages scoring > 0, prefixed with the score digit. */

char buf[256];
char out[260];

int match_at(char *text, int pos, int len, char *word) {
    int i = 0;
    while (word[i]) {
        if (pos + i >= len) return 0;
        int c = text[pos + i];
        if (c >= 'A' && c <= 'Z') c = c + 32;   /* lowercase */
        if (c != word[i]) return 0;
        i++;
    }
    return 1;
}

int count_word(char *text, int len, char *word) {
    int n = 0;
    int pos;
    for (pos = 0; pos < len; pos++)
        if (match_at(text, pos, len, word)) n++;
    return n;
}

int main() {
    int forwarded = 0;
    while (1) {
        int len = host_recv(buf, 256);
        if (len < 0) break;
        int score = 2 * count_word(buf, len, "urgent")
                  + count_word(buf, len, "omniware")
                  - 3 * count_word(buf, len, "spam");
        if (score > 0) {
            out[0] = '0' + (score > 9 ? 9 : score);
            out[1] = ':';
            int i;
            for (i = 0; i < len; i++) out[2 + i] = buf[i];
            host_send(out, len + 2);
            forwarded++;
        }
    }
    emit_int(forwarded);
    return 0;
}
"""

GREEDY = r"""
int main() {
    gfx_draw(1, 1, 0xFF0000);   /* not exported to mail filters! */
    return 0;
}
"""

INBOX = [
    b"URGENT: the omniware beta ships today",
    b"cheap spam spam spam offer",
    b"lunch on thursday?",
    b"urgent urgent: rebooting the server",
    b"omniware questions from the list",
]


def main() -> None:
    print("== server loads the client's filter module ==")
    obj = compile_to_object(FILTER, CompileOptions(module_name="filter"))
    program = link([obj], name="mailfilter")

    # The server's export policy: mail I/O yes, graphics no.
    exports = set(hostapi.DEFAULT_EXPORTS) | {"host_send", "host_recv"}
    host = Host(exports=exports)
    host.inbox = list(INBOX)

    module = load_for_target(program, "mips", MOBILE_SFI, host=host)
    code = module.run()
    print(f"   filter exit={code}, forwarded={host.output_values()[-1]}")
    for sent in host.sent:
        print(f"   forwarded: {sent.decode()!r}")

    print("== a module asking for unexported host functions is refused ==")
    greedy_obj = compile_to_object(GREEDY, CompileOptions(module_name="greedy"))
    greedy = link([greedy_obj], name="greedy")
    greedy_host = Host(exports=exports)  # same policy: no gfx
    try:
        load_for_target(greedy, "mips", MOBILE_SFI, host=greedy_host).run()
        print("   unexpected: greedy module ran")
    except HostCallError as err:
        print(f"   rejected: {err}")


if __name__ == "__main__":
    main()
