"""Quickstart: compile, ship, verify, translate, and safely run a module.

Walks the full Omniware pipeline on one small program:

1. compile MiniC to an OmniVM object module and link it,
2. serialize it to bytes (this is what would travel over the network),
3. load it back, verify it, and run it on the reference interpreter,
4. translate it (with inline SFI) for every simulated target and run it,
5. show that a *hostile* module's wild store is contained by SFI.

Run:  python examples/quickstart.py
"""

from repro.compiler import CompileOptions, compile_to_object
from repro.errors import AccessViolation
from repro.omnivm.linker import link
from repro.omnivm.objfile import ObjectModule
from repro.runtime.loader import run_module
from repro.runtime.native_loader import run_on_target
from repro.native.profiles import MOBILE_SFI
from repro.translators import ARCHITECTURES

PROGRAM = r"""
int squares_sum(int n) {
    int total = 0;
    int i;
    for (i = 1; i <= n; i++) total += i * i;
    return total;
}

int main() {
    emit_str("sum of squares 1..10 = ");
    emit_int(squares_sum(10));
    emit_char('\n');
    return 0;
}
"""

HOSTILE = r"""
int main() {
    /* A malicious module: scribble over (what it hopes is) host memory. */
    int *p = (int *) 0x50000040;   /* the host segment */
    *p = 0xDEAD;                   /* SFI redirects this into the sandbox */
    emit_str("still alive, store was contained\n");
    return 0;
}
"""


def main() -> None:
    print("== 1. compile & link ==")
    obj = compile_to_object(PROGRAM, CompileOptions(module_name="quick"))
    program = link([obj], name="quickstart")
    print(f"   {len(program.instrs)} OmniVM instructions, "
          f"{len(program.data_image)} data bytes")

    print("== 2. the mobile bytes ==")
    wire = obj.to_bytes()
    print(f"   object module serializes to {len(wire)} bytes")
    round_tripped = ObjectModule.from_bytes(wire)
    program = link([round_tripped], name="quickstart")

    print("== 3. reference interpreter ==")
    code, host = run_module(program)
    print(f"   exit={code} output: {host.output_text()!r}")

    print("== 4. translated native execution (with SFI) ==")
    for arch in ARCHITECTURES:
        code, module = run_on_target(program, arch, MOBILE_SFI)
        machine = module.machine
        print(f"   {arch:>5}: exit={code}  {machine.instret} instructions, "
              f"{machine.cycles} cycles  output ok="
              f"{module.host.output_text() == host.output_text()}")

    print("== 5. SFI containment demo ==")
    hostile_obj = compile_to_object(HOSTILE, CompileOptions(module_name="evil"))
    hostile = link([hostile_obj], name="hostile")
    # Reference VM: segment permissions fault the wild store outright.
    try:
        run_module(hostile)
        print("   interpreter: unexpected success")
    except AccessViolation as violation:
        print(f"   interpreter: access violation at "
              f"{violation.address:#010x} (host memory protected)")
    # Translated with SFI: the store is silently redirected into the
    # module's own sandbox; the host is untouched and the module runs on.
    code, module = run_on_target(hostile, "mips", MOBILE_SFI)
    print(f"   mips+SFI   : exit={code} "
          f"output: {module.host.output_text()!r}")


if __name__ == "__main__":
    main()
