"""Mini Table 2: how the OmniVM register file size affects performance.

Recompiles one workload (`eqntott`) with the register allocator limited
to 8/10/12/14/16 OmniVM registers, translates each build for SPARC, and
reports cycles relative to the vendor-cc baseline — a one-workload
version of the paper's Table 2 (the full version is
``pytest benchmarks/bench_table2_registers.py --benchmark-only``).

Run:  python examples/register_sweep.py   (~1 minute of simulation)
"""

from repro.evalharness.runner import RunKey, global_runner


def main() -> None:
    runner = global_runner()
    workload = "eqntott"
    baseline = runner.run(RunKey(workload, "sparc", "native-cc")).cycles
    print(f"workload={workload}, target=sparc, baseline=native-cc "
          f"({baseline} cycles)\n")
    print(f"{'registers':>10} {'cycles':>10} {'vs native cc':>14}")
    for size in (8, 10, 12, 14, 16):
        result = runner.run(RunKey(workload, "sparc", "mobile-sfi", size))
        ratio = result.cycles / baseline
        bar = "#" * int((ratio - 0.9) * 100)
        print(f"{size:>10} {result.cycles:>10} {ratio:>13.3f}  {bar}")
    print("\npaper's Table 2 averages: 8->1.11  10->1.11  12->1.08  "
          "14->1.06  16->1.05")


if __name__ == "__main__":
    main()
