"""Language independence (the paper's Figure 2), executably.

Because OmniVM enforces safety with SFI — not with a type system — any
language that can target its RISC-like instruction set can ship mobile
code.  This example compiles modules from **three different front ends**

* MiniC (the C-subset compiler),
* MiniLisp (an unrelated Lisp front end over the same IR), and
* hand-written OmniVM assembly (via the assembler),

links them into *one* mobile program with cross-language calls in both
directions, and runs the result identically on the reference VM and all
four translated targets.

Run:  python examples/multi_language.py
"""

from repro.compiler import CompileOptions, compile_to_object
from repro.lang2.compiler import compile_minilisp
from repro.omnivm.asmparser import assemble
from repro.omnivm.linker import link
from repro.runtime.loader import run_module
from repro.runtime.native_loader import run_on_target
from repro.native.profiles import MOBILE_SFI
from repro.translators import ARCHITECTURES

C_PART = r"""
extern int lisp_tri(int n);      /* from the MiniLisp module */
extern int asm_double(int n);    /* from the assembly module */

int c_add(int a, int b) { return a + b; }   /* called from Lisp */

int main() {
    emit_str("lisp triangular(10)  = ");
    emit_int(lisp_tri(10));
    emit_char('\n');
    emit_str("asm  double(21)      = ");
    emit_int(asm_double(21));
    emit_char('\n');
    return 0;
}
"""

LISP_PART = """
; triangular numbers, calling back into the C module for the addition
(defun lisp_tri (n)
  (let ((total 0) (i 1))
    (while (<= i n)
      (set! total (c_add total i))
      (set! i (+ i 1)))
    total))
"""

ASM_PART = """
    .text
    .globl asm_double
asm_double:
    add r1, r1, r1        ; return 2*n, no frame needed
    jr ra
"""


def main() -> None:
    print("== three front ends, one mobile format ==")
    c_obj = compile_to_object(C_PART, CompileOptions(module_name="cpart"))
    lisp_obj = compile_minilisp(LISP_PART, module_name="lisppart")
    asm_obj = assemble(ASM_PART, module_name="asmpart")
    program = link([c_obj, lisp_obj, asm_obj], name="polyglot")
    print(f"   linked {len(program.instrs)} OmniVM instructions from "
          f"MiniC + MiniLisp + assembly")

    code, host = run_module(program)
    reference = host.output_text()
    print("== reference interpreter ==")
    print("   " + reference.replace("\n", "\n   ").rstrip())

    print("== the same bytes on every target (translated, SFI on) ==")
    for arch in ARCHITECTURES:
        _code, module = run_on_target(program, arch, MOBILE_SFI)
        same = module.host.output_text() == reference
        print(f"   {arch:>5}: identical output = {same}")


if __name__ == "__main__":
    main()
